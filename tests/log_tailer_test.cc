#include "granula/live/log_tailer.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "granula/monitor/job_logger.h"

namespace granula::core {
namespace {

std::string FreshPath(const std::string& name) {
  std::string path = testing::TempDir() + "/tailer_" + name + ".jsonl";
  std::error_code ec;
  std::filesystem::remove(path, ec);
  return path;
}

std::string RecordLine(uint64_t seq, uint64_t op) {
  LogRecord r;
  r.kind = LogRecord::Kind::kStartOp;
  r.seq = seq;
  r.time = SimTime::Seconds(static_cast<double>(seq));
  r.op_id = op;
  r.actor_type = "Job";
  r.actor_id = "job";
  r.mission_type = "M";
  r.mission_id = "M";
  return r.ToJson().Dump(0) + "\n";
}

void AppendRaw(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::app | std::ios::binary);
  out << text;
}

TEST(LogTailerTest, MissingFileYieldsNothing) {
  LogTailer tailer(FreshPath("missing"));
  LogTailer::Poll poll = tailer.PollOnce();
  EXPECT_TRUE(poll.records.empty());
  EXPECT_EQ(poll.malformed_lines, 0u);
  EXPECT_FALSE(poll.rotated);
  EXPECT_EQ(tailer.bytes_consumed(), 0u);
}

TEST(LogTailerTest, PicksUpAppendsAcrossPolls) {
  std::string path = FreshPath("appends");
  LogTailer tailer(path);
  AppendRaw(path, RecordLine(0, 1));
  LogTailer::Poll first = tailer.PollOnce();
  ASSERT_EQ(first.records.size(), 1u);
  EXPECT_EQ(first.records[0].seq, 0u);

  // Nothing new: the second poll is empty, not a re-read.
  EXPECT_TRUE(tailer.PollOnce().records.empty());

  AppendRaw(path, RecordLine(1, 2) + RecordLine(2, 3));
  LogTailer::Poll second = tailer.PollOnce();
  ASSERT_EQ(second.records.size(), 2u);
  EXPECT_EQ(second.records[0].seq, 1u);
  EXPECT_EQ(second.records[1].seq, 2u);
}

TEST(LogTailerTest, BuffersPartialLinesUntilTheNewlineArrives) {
  std::string path = FreshPath("partial");
  LogTailer tailer(path);
  std::string line = RecordLine(7, 9);
  AppendRaw(path, line.substr(0, line.size() / 2));
  EXPECT_TRUE(tailer.PollOnce().records.empty());
  AppendRaw(path, line.substr(line.size() / 2));
  LogTailer::Poll poll = tailer.PollOnce();
  ASSERT_EQ(poll.records.size(), 1u);
  EXPECT_EQ(poll.records[0].seq, 7u);
  EXPECT_EQ(poll.records[0].op_id, 9u);
  EXPECT_EQ(poll.malformed_lines, 0u);
}

TEST(LogTailerTest, CountsMalformedLinesAndKeepsGoing) {
  std::string path = FreshPath("malformed");
  LogTailer tailer(path);
  AppendRaw(path, "this is not json\n" + RecordLine(3, 4) +
                      "{\"kind\":\"start\"\n");
  LogTailer::Poll poll = tailer.PollOnce();
  ASSERT_EQ(poll.records.size(), 1u);
  EXPECT_EQ(poll.records[0].seq, 3u);
  EXPECT_EQ(poll.malformed_lines, 2u);
  EXPECT_EQ(tailer.total_malformed_lines(), 2u);
}

TEST(LogTailerTest, SkipsBlankLinesAndCarriageReturns) {
  std::string path = FreshPath("blank");
  LogTailer tailer(path);
  std::string line = RecordLine(5, 6);
  line.insert(line.size() - 1, "\r");  // CRLF line ending
  AppendRaw(path, "\n" + line + "\n");
  LogTailer::Poll poll = tailer.PollOnce();
  ASSERT_EQ(poll.records.size(), 1u);
  EXPECT_EQ(poll.records[0].seq, 5u);
  EXPECT_EQ(poll.malformed_lines, 0u);
}

TEST(LogTailerTest, DetectsTruncationAndRereadsFromTheStart) {
  std::string path = FreshPath("rotate");
  LogTailer tailer(path);
  AppendRaw(path, RecordLine(0, 1) + RecordLine(1, 2));
  EXPECT_EQ(tailer.PollOnce().records.size(), 2u);

  // Rotate: the file is replaced by a shorter one (a fresh job's log).
  std::ofstream(path, std::ios::trunc | std::ios::binary) << RecordLine(0, 9);
  LogTailer::Poll poll = tailer.PollOnce();
  EXPECT_TRUE(poll.rotated);
  ASSERT_EQ(poll.records.size(), 1u);
  EXPECT_EQ(poll.records[0].op_id, 9u);
}

TEST(LogTailerTest, TornWriteMergesIntoOneMalformedLineWithoutLoss) {
  // A truncated record loses its tail AND its newline, so it merges with
  // the next line into one malformed line. Completed records on either
  // side must arrive exactly once — no loss, no duplication.
  std::string path = FreshPath("torn");
  LogTailer tailer(path);
  std::string torn = RecordLine(1, 2);
  torn.resize(torn.size() / 2);  // mid-record, newline gone
  AppendRaw(path, RecordLine(0, 1) + torn);
  LogTailer::Poll first = tailer.PollOnce();
  ASSERT_EQ(first.records.size(), 1u);
  EXPECT_EQ(first.records[0].seq, 0u);
  EXPECT_EQ(first.malformed_lines, 0u);  // could still be a slow writer

  AppendRaw(path, RecordLine(2, 3) + RecordLine(3, 4));
  LogTailer::Poll second = tailer.PollOnce();
  // The torn half swallowed record 2's line; record 3 survives alone.
  ASSERT_EQ(second.records.size(), 1u);
  EXPECT_EQ(second.records[0].seq, 3u);
  EXPECT_EQ(second.malformed_lines, 1u);

  AppendRaw(path, RecordLine(4, 5));
  LogTailer::Poll third = tailer.PollOnce();
  ASSERT_EQ(third.records.size(), 1u);
  EXPECT_EQ(third.records[0].seq, 4u);
  EXPECT_EQ(tailer.total_malformed_lines(), 1u);
}

TEST(LogTailerTest, RotationDiscardsTheStalePartialLine) {
  // The writer dies mid-line, then a fresh job rotates the log. The
  // buffered partial line belongs to the dead run and must not be glued
  // onto the new file's first record.
  std::string path = FreshPath("rotate_partial");
  LogTailer tailer(path);
  std::string partial = RecordLine(2, 3);
  partial.resize(partial.size() / 2);
  AppendRaw(path, RecordLine(0, 1) + RecordLine(1, 2) + partial);
  ASSERT_EQ(tailer.PollOnce().records.size(), 2u);

  // Rotation is detected by the file shrinking (the fresh job's log is
  // shorter than the dead one's).
  std::ofstream(path, std::ios::trunc | std::ios::binary) << RecordLine(0, 9);
  LogTailer::Poll poll = tailer.PollOnce();
  EXPECT_TRUE(poll.rotated);
  ASSERT_EQ(poll.records.size(), 1u);
  EXPECT_EQ(poll.records[0].op_id, 9u);
  EXPECT_EQ(poll.malformed_lines, 0u);

  // And the new log keeps tailing cleanly after the rotation.
  AppendRaw(path, RecordLine(1, 10));
  LogTailer::Poll next = tailer.PollOnce();
  ASSERT_EQ(next.records.size(), 1u);
  EXPECT_EQ(next.records[0].op_id, 10u);
  EXPECT_EQ(tailer.total_malformed_lines(), 0u);
}

TEST(LogTailerTest, InjectedWriteFaultsThroughJobLogger) {
  // End-to-end with the producer's fault hook (the same path the fault
  // plan's kLogWrite specs install): dropped records never reach the
  // file; a truncated record merges with its successor; every other
  // record arrives exactly once.
  std::string path = FreshPath("faulted_logger");
  SimTime now;
  JobLogger logger([&now] { return now; });
  ASSERT_TRUE(logger.StreamTo(path).ok());
  logger.SetWriteFaultHook([](const LogRecord& record) {
    if (record.seq == 2) return JobLogger::WriteFault::kDrop;
    if (record.seq == 4) return JobLogger::WriteFault::kTruncate;
    return JobLogger::WriteFault::kNone;
  });

  LogTailer tailer(path);
  OpId root = logger.StartOperation(kNoOp, "Job", "job", "Root", "Root");
  for (int i = 0; i < 6; ++i) {
    logger.AddInfo(root, "I" + std::to_string(i),
                   Json(static_cast<int64_t>(i)));
  }
  logger.EndOperation(root);
  logger.StopStreaming();

  std::vector<LogRecord> got;
  for (;;) {
    LogTailer::Poll poll = tailer.PollOnce();
    if (poll.records.empty() && poll.malformed_lines == 0) break;
    for (LogRecord& r : poll.records) got.push_back(std::move(r));
  }
  // seq 2 dropped; seq 4 torn and merged with seq 5's line (one malformed
  // line); seqs 0,1,3,6,7 survive, each exactly once, in order.
  std::vector<uint64_t> seqs;
  for (const LogRecord& r : got) seqs.push_back(r.seq);
  EXPECT_EQ(seqs, (std::vector<uint64_t>{0, 1, 3, 6, 7}));
  EXPECT_EQ(tailer.total_malformed_lines(), 1u);
}

TEST(LogTailerTest, TailsAJobLoggerStream) {
  // End-to-end with the producer side: JobLogger::StreamTo writes each
  // record as it happens; the tailer reconstructs the exact record list.
  std::string path = FreshPath("logger");
  SimTime now;
  JobLogger logger([&now] { return now; });
  ASSERT_TRUE(logger.StreamTo(path).ok());

  LogTailer tailer(path);
  OpId root = logger.StartOperation(kNoOp, "Job", "job", "Root", "Root");
  logger.AddInfo(root, "Vertices", Json(static_cast<int64_t>(42)));
  LogTailer::Poll poll = tailer.PollOnce();
  ASSERT_EQ(poll.records.size(), 2u);
  EXPECT_EQ(poll.records[0].kind, LogRecord::Kind::kStartOp);
  EXPECT_EQ(poll.records[1].info_name, "Vertices");

  now = SimTime::Seconds(3);
  logger.EndOperation(root);
  logger.StopStreaming();
  poll = tailer.PollOnce();
  ASSERT_EQ(poll.records.size(), 1u);
  EXPECT_EQ(poll.records[0].kind, LogRecord::Kind::kEndOp);
  EXPECT_EQ(poll.records[0].time.seconds(), 3.0);
  EXPECT_EQ(tailer.total_malformed_lines(), 0u);
}

}  // namespace
}  // namespace granula::core
