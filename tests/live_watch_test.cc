// End-to-end live monitoring: a platform job streams its log to disk via
// JobLogger::StreamTo while `WatchLog` tails the same file from another
// thread, assembling the archive online and raising in-flight alerts.
// The acceptance bar from the issue: at least one alert must surface
// before the job completes, and the final watched archive must be
// byte-identical to the batch archive built from the same records.

#include "granula/live/watch.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "granula/archive/archiver.h"
#include "granula/live/alerts.h"
#include "granula/models/models.h"
#include "graph/generators.h"
#include "platforms/powergraph.h"

namespace granula::core {
namespace {

using platform::JobConfig;
using platform::JobResult;

std::string FreshPath(const std::string& name) {
  std::string path = testing::TempDir() + "/watch_" + name + ".jsonl";
  std::error_code ec;
  std::filesystem::remove(path, ec);
  return path;
}

graph::Graph TestGraph() {
  graph::DatagenConfig config;
  config.num_vertices = 2000;
  config.avg_degree = 8.0;
  config.seed = 7;
  auto g = graph::GenerateDatagen(config);
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

Result<JobResult> RunPowerGraph(const std::string& live_log,
                                uint64_t delay_us) {
  graph::Graph graph = TestGraph();
  algo::AlgorithmSpec spec;
  spec.id = algo::AlgorithmId::kBfs;
  spec.source = 1;
  cluster::ClusterConfig cluster;
  JobConfig job;
  job.live_log_path = live_log;
  job.live_log_delay_us = delay_us;
  return platform::PowerGraphPlatform().Run(graph, spec, cluster, job);
}

// Alert-friendly thresholds: real runs have a clearly dominant phase, so
// lowering the fraction makes at least one detector fire early.
ChokepointOptions EagerChokepoints() {
  ChokepointOptions options;
  options.dominant_phase_fraction = 0.20;
  options.min_phase_fraction = 0.01;
  return options;
}

TEST(LiveWatchTest, TailsAConcurrentRunAndAlertsInFlight) {
  std::string log = FreshPath("concurrent");
  // Pace the producer so the job is genuinely in flight while we tail:
  // each record's write sleeps a little wall-clock time (virtual time is
  // untouched), stretching the run over many watch polls.
  Result<JobResult> result = Status::Internal("producer never ran");
  std::thread producer([&] { result = RunPowerGraph(log, 50); });

  WatchOptions options;
  options.log_path = log;
  options.poll_interval_ms = 5;
  options.timeout_s = 120;
  options.quiet = true;
  options.chokepoints = EagerChokepoints();
  Result<WatchSummary> watched =
      WatchLog(MakePowerGraphModel(), options, nullptr);
  producer.join();

  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(watched.ok()) << watched.status();
  const WatchSummary& summary = watched.value();
  EXPECT_TRUE(summary.completed);
  EXPECT_EQ(summary.records_ingested, result.value().records.size());
  EXPECT_EQ(summary.malformed_lines, 0u);
  EXPECT_GE(summary.alerts, 1u);
  // The point of live monitoring: the first diagnosis arrives while the
  // job is still running, not after the fact.
  EXPECT_GE(summary.in_flight_alerts, 1u);
  EXPECT_GT(summary.snapshots, 1u);

  // The watched archive is byte-identical to the batch pipeline's output
  // over the same records (no metadata/environment on either side).
  auto batch = Archiver().Build(MakePowerGraphModel(),
                                result.value().records, {}, {});
  ASSERT_TRUE(batch.ok()) << batch.status();
  EXPECT_EQ(summary.archive.ToJsonString(2), batch.value().ToJsonString(2));
}

TEST(LiveWatchTest, CompletedLogIsWatchableAfterTheFact) {
  // Watching a log that is already complete degenerates to batch mode:
  // one poll drains it, the archiver finalizes, and we exit immediately.
  std::string log = FreshPath("replay");
  Result<JobResult> result = RunPowerGraph(log, 0);
  ASSERT_TRUE(result.ok()) << result.status();

  WatchOptions options;
  options.log_path = log;
  options.poll_interval_ms = 5;
  options.timeout_s = 10;
  options.quiet = true;
  Result<WatchSummary> watched =
      WatchLog(MakePowerGraphModel(), options, nullptr);
  ASSERT_TRUE(watched.ok()) << watched.status();
  EXPECT_TRUE(watched.value().completed);
  EXPECT_EQ(watched.value().records_ingested,
            result.value().records.size());
  EXPECT_EQ(watched.value().archiver_stats.quarantined_records, 0u);
}

TEST(LiveWatchTest, TimesOutWhenTheJobNeverFinishes) {
  std::string log = FreshPath("stalled");
  // One lonely StartOp: the job hangs and nothing else ever arrives.
  LogRecord r;
  r.kind = LogRecord::Kind::kStartOp;
  r.seq = 0;
  r.op_id = 1;
  r.actor_type = "Job";
  r.actor_id = "job";
  r.mission_type = "GraphProcessingJob";
  r.mission_id = "PowerGraphJob";
  std::ofstream(log) << r.ToJson().Dump(0) << "\n";

  WatchOptions options;
  options.log_path = log;
  options.poll_interval_ms = 10;
  options.timeout_s = 0.3;
  options.quiet = true;
  Result<WatchSummary> watched =
      WatchLog(MakePowerGraphModel(), options, nullptr);
  ASSERT_TRUE(watched.ok()) << watched.status();
  EXPECT_FALSE(watched.value().completed);
  EXPECT_EQ(watched.value().records_ingested, 1u);
  // The last watermark snapshot still ships: the stalled operation is
  // visible, marked in flight.
  ASSERT_NE(watched.value().archive.root, nullptr);
  EXPECT_TRUE(watched.value().archive.root->HasInfo("InFlight"));
}

TEST(AlertTrackerTest, DeduplicatesAcrossSnapshots) {
  Result<JobResult> result = RunPowerGraph("", 0);
  ASSERT_TRUE(result.ok()) << result.status();
  auto archive = Archiver().Build(MakePowerGraphModel(),
                                  result.value().records, {}, {});
  ASSERT_TRUE(archive.ok()) << archive.status();

  AlertTracker tracker(EagerChokepoints());
  std::vector<LiveAlert> first = tracker.Update(archive.value());
  ASSERT_GE(first.size(), 1u);
  // The finished archive carries no InFlight marker.
  EXPECT_FALSE(first[0].in_flight);
  // Same archive again: every finding was already reported.
  EXPECT_TRUE(tracker.Update(archive.value()).empty());
  EXPECT_EQ(tracker.alerts().size(), first.size());
  EXPECT_EQ(tracker.snapshots_analyzed(), 2u);
}

}  // namespace
}  // namespace granula::core
