#include "common/sim_time.h"

#include <gtest/gtest.h>

namespace granula {
namespace {

TEST(SimTimeTest, Constructors) {
  EXPECT_EQ(SimTime().nanos(), 0);
  EXPECT_EQ(SimTime::Nanos(5).nanos(), 5);
  EXPECT_EQ(SimTime::Micros(2).nanos(), 2000);
  EXPECT_EQ(SimTime::Millis(3).nanos(), 3000000);
  EXPECT_EQ(SimTime::Seconds(1.5).nanos(), 1500000000);
}

TEST(SimTimeTest, Conversions) {
  SimTime t = SimTime::Seconds(81.59);
  EXPECT_NEAR(t.seconds(), 81.59, 1e-9);
  EXPECT_NEAR(t.millis(), 81590.0, 1e-6);
}

TEST(SimTimeTest, SecondsRoundsToNearestNano) {
  // 81.59 is not exactly representable; truncation used to yield
  // 81589999999 ns, off by 1 ns per conversion.
  EXPECT_EQ(SimTime::Seconds(81.59).nanos(), 81590000000);
  EXPECT_EQ(SimTime::Seconds(0.1).nanos(), 100000000);
  EXPECT_EQ(SimTime::Seconds(-81.59).nanos(), -81590000000);
  EXPECT_EQ(SimTime::Seconds(1e-9).nanos(), 1);
  EXPECT_EQ(SimTime::Seconds(0.0).nanos(), 0);
  // Round-trip through seconds() is exact once rounded.
  SimTime t = SimTime::Seconds(81.59);
  EXPECT_EQ(SimTime::Seconds(t.seconds()), t);
}

TEST(SimTimeTest, Arithmetic) {
  SimTime a = SimTime::Seconds(2.0), b = SimTime::Seconds(0.5);
  EXPECT_EQ((a + b).nanos(), SimTime::Seconds(2.5).nanos());
  EXPECT_EQ((a - b).nanos(), SimTime::Seconds(1.5).nanos());
  EXPECT_EQ((a * 2.0).nanos(), SimTime::Seconds(4.0).nanos());
  a += b;
  EXPECT_EQ(a, SimTime::Seconds(2.5));
  a -= b;
  EXPECT_EQ(a, SimTime::Seconds(2.0));
}

TEST(SimTimeTest, Comparisons) {
  EXPECT_LT(SimTime::Seconds(1), SimTime::Seconds(2));
  EXPECT_GT(SimTime::Max(), SimTime::Seconds(1e9));
  EXPECT_EQ(SimTime::Millis(1000), SimTime::Seconds(1.0));
  EXPECT_GE(SimTime::Nanos(1), SimTime::Nanos(1));
}

TEST(SimTimeTest, ToStringPicksUnit) {
  EXPECT_EQ(SimTime::Nanos(12).ToString(), "12ns");
  EXPECT_EQ(SimTime::Micros(2).ToString(), "2.00us");
  EXPECT_EQ(SimTime::Millis(3).ToString(), "3.00ms");
  EXPECT_EQ(SimTime::Seconds(81.59).ToString(), "81.59s");
  EXPECT_EQ(SimTime::Max().ToString(), "inf");
}

TEST(SimTimeTest, StreamOperator) {
  std::ostringstream os;
  os << SimTime::Seconds(1.0);
  EXPECT_EQ(os.str(), "1.00s");
}

}  // namespace
}  // namespace granula
