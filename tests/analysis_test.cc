// Tests for the analysis module (choke-point detection and regression
// comparison) on synthetic archives with known, planted patterns — plus
// end-to-end checks on real platform runs in failure_diagnosis_test.cc.

#include "granula/analysis/chokepoint.h"
#include "granula/analysis/regression.h"

#include <gtest/gtest.h>

#include "granula/archive/archiver.h"
#include "granula/model/performance_model.h"
#include "granula/monitor/job_logger.h"

namespace granula::core {
namespace {

// Builds an archive with a parameterized shape:
//   Root(0..total) -> PhaseA(0..a_end), PhaseB(a_end..total)
// plus optional supersteps with per-worker compute times.
struct ArchiveSpec {
  double total = 100;
  double a_end = 20;
  // worker -> compute seconds per superstep (all in PhaseB).
  std::vector<std::vector<double>> supersteps;
};

PerformanceArchive BuildArchive(const ArchiveSpec& spec,
                                std::vector<EnvironmentRecord> env = {}) {
  SimTime now;
  JobLogger logger([&now] { return now; });
  OpId root = logger.StartOperation(kNoOp, "Job", "job", "Root", "Root");
  OpId a = logger.StartOperation(root, "Job", "job", "PhaseA", "PhaseA");
  now = SimTime::Seconds(spec.a_end);
  logger.EndOperation(a);
  OpId b = logger.StartOperation(root, "Job", "job", "ProcessGraph",
                                 "ProcessGraph");
  double t = spec.a_end;
  for (size_t s = 0; s < spec.supersteps.size(); ++s) {
    const auto& workers = spec.supersteps[s];
    double slowest = 0;
    for (double w : workers) slowest = std::max(slowest, w);
    OpId step = logger.StartOperation(b, "Master", "Master-0", "Superstep",
                                      "Superstep-" + std::to_string(s));
    for (size_t w = 0; w < workers.size(); ++w) {
      now = SimTime::Seconds(t);
      OpId local = logger.StartOperation(
          step, "Worker", "Worker-" + std::to_string(w + 1),
          "LocalSuperstep", "LocalSuperstep");
      OpId compute = logger.StartOperation(
          local, "Worker", "Worker-" + std::to_string(w + 1), "Compute",
          "Compute-" + std::to_string(s));
      now = SimTime::Seconds(t + workers[w]);
      logger.EndOperation(compute);
      now = SimTime::Seconds(t + slowest);
      logger.EndOperation(local);
    }
    logger.EndOperation(step);
    t += slowest;
  }
  now = SimTime::Seconds(spec.total);
  logger.EndOperation(b);
  logger.EndOperation(root);

  PerformanceModel model("m");
  (void)model.AddRoot("Job", "Root");
  (void)model.AddOperation("Job", "PhaseA", "Job", "Root");
  (void)model.AddOperation("Job", "ProcessGraph", "Job", "Root");
  (void)model.AddOperation("Master", "Superstep", "Job", "ProcessGraph");
  (void)model.AddOperation("Worker", "LocalSuperstep", "Master",
                           "Superstep");
  (void)model.AddOperation("Worker", "Compute", "Worker", "LocalSuperstep");
  (void)model.AddRule("Master", "Superstep",
                      MakeChildAggregateRule("SlowestWorker", Aggregate::kMax,
                                             "Duration", "LocalSuperstep"));
  (void)model.AddRule("Master", "Superstep",
                      MakeChildAggregateRule("FastestWorker", Aggregate::kMin,
                                             "Duration", "LocalSuperstep"));
  (void)model.AddRule(
      "Master", "Superstep",
      MakeCustomRule("WorkerImbalance", "max compute / min compute",
                     [](const ArchivedOperation& op) -> Result<Json> {
                       double min = 1e300, max = 0;
                       op.Visit([&](const ArchivedOperation& node) {
                         if (node.mission_type != "Compute") return;
                         double d = node.Duration().seconds();
                         min = std::min(min, d);
                         max = std::max(max, d);
                       });
                       if (max <= 0 || min <= 0) {
                         return Status::NotFound("no compute");
                       }
                       return Json(max / min);
                     }));
  auto archive =
      Archiver().Build(model, logger.records(), std::move(env), {});
  EXPECT_TRUE(archive.ok()) << archive.status();
  return std::move(archive).value();
}

bool HasFinding(const std::vector<Finding>& findings, FindingKind kind) {
  for (const Finding& f : findings) {
    if (f.kind == kind) return true;
  }
  return false;
}

TEST(ChokepointTest, DominantPhaseDetected) {
  ArchiveSpec spec;
  spec.total = 100;
  spec.a_end = 70;  // PhaseA is 70% of the job
  PerformanceArchive archive = BuildArchive(spec);
  auto findings = AnalyzeChokepoints(archive, ChokepointOptions{});
  ASSERT_TRUE(HasFinding(findings, FindingKind::kDominantPhase));
  EXPECT_EQ(findings[0].severity, Severity::kCritical);
  EXPECT_EQ(findings[0].operation, "Root/PhaseA");
}

TEST(ChokepointTest, BalancedJobHasNoDominantPhase) {
  ArchiveSpec spec;
  spec.total = 100;
  spec.a_end = 45;  // 45% / 55% split
  ChokepointOptions options;
  options.dominant_phase_fraction = 0.60;
  auto findings = AnalyzeChokepoints(BuildArchive(spec), options);
  EXPECT_FALSE(HasFinding(findings, FindingKind::kDominantPhase));
}

TEST(ChokepointTest, WorkerImbalanceDetected) {
  ArchiveSpec spec;
  spec.total = 40;
  spec.a_end = 10;
  spec.supersteps = {{5.0, 5.0, 5.0, 9.0}};  // one slow worker
  auto findings = AnalyzeChokepoints(BuildArchive(spec), {});
  EXPECT_TRUE(HasFinding(findings, FindingKind::kWorkerImbalance));
}

TEST(ChokepointTest, BalancedSuperstepNotFlagged) {
  ArchiveSpec spec;
  spec.total = 40;
  spec.a_end = 10;
  spec.supersteps = {{5.0, 5.1, 5.0, 5.2}};
  auto findings = AnalyzeChokepoints(BuildArchive(spec), {});
  EXPECT_FALSE(HasFinding(findings, FindingKind::kWorkerImbalance));
}

TEST(ChokepointTest, StragglerNodeDetectedAcrossSupersteps) {
  ArchiveSpec spec;
  spec.total = 100;
  spec.a_end = 10;
  // Worker-4 consistently ~2x the others over three supersteps.
  spec.supersteps = {{5, 5, 5, 10}, {6, 6, 6, 12}, {4, 4, 4, 8}};
  auto findings = AnalyzeChokepoints(BuildArchive(spec), {});
  ASSERT_TRUE(HasFinding(findings, FindingKind::kStragglerNode));
  for (const Finding& f : findings) {
    if (f.kind == FindingKind::kStragglerNode) {
      EXPECT_NE(f.description.find("Worker-4"), std::string::npos);
    }
  }
}

TEST(ChokepointTest, SynchronizationOverheadDetected) {
  ArchiveSpec spec;
  spec.total = 100;
  spec.a_end = 10;
  // Heavy imbalance: fast workers idle at the barrier most of the time.
  spec.supersteps = {{2, 2, 2, 10}, {2, 2, 2, 10}};
  auto findings = AnalyzeChokepoints(BuildArchive(spec), {});
  EXPECT_TRUE(
      HasFinding(findings, FindingKind::kSynchronizationOverhead));
}

std::vector<EnvironmentRecord> UniformEnv(double until, double per_node_cpu,
                                          uint32_t nodes = 4) {
  std::vector<EnvironmentRecord> env;
  for (double t = 1; t <= until; t += 1.0) {
    for (uint32_t n = 0; n < nodes; ++n) {
      EnvironmentRecord r;
      r.node = n;
      r.hostname = "node" + std::to_string(339 + n);
      r.time_seconds = t;
      r.cpu_seconds_per_second = per_node_cpu;
      env.push_back(r);
    }
  }
  return env;
}

TEST(ChokepointTest, IdlePhaseDetectedWithCapacity) {
  ArchiveSpec spec;
  spec.total = 100;
  spec.a_end = 30;
  PerformanceArchive archive =
      BuildArchive(spec, UniformEnv(100, 0.2));  // 0.8 of 64 capacity
  ChokepointOptions options;
  options.cluster_cpu_capacity = 64;
  auto findings = AnalyzeChokepoints(archive, options);
  EXPECT_TRUE(HasFinding(findings, FindingKind::kIdleDuringPhase));
}

TEST(ChokepointTest, SaturatedPhaseDetected) {
  ArchiveSpec spec;
  spec.total = 100;
  spec.a_end = 30;
  PerformanceArchive archive =
      BuildArchive(spec, UniformEnv(100, 14.0, 4));  // 56 of 64
  ChokepointOptions options;
  options.cluster_cpu_capacity = 64;
  auto findings = AnalyzeChokepoints(archive, options);
  EXPECT_TRUE(HasFinding(findings, FindingKind::kCpuSaturatedPhase));
}

TEST(ChokepointTest, SingleNodeHotspotDetected) {
  ArchiveSpec spec;
  spec.total = 100;
  spec.a_end = 60;
  std::vector<EnvironmentRecord> env;
  for (double t = 1; t <= 100; t += 1.0) {
    for (uint32_t n = 0; n < 4; ++n) {
      EnvironmentRecord r;
      r.node = n;
      r.hostname = "node" + std::to_string(339 + n);
      r.time_seconds = t;
      // During PhaseA (t <= 60) only node 2 burns CPU.
      r.cpu_seconds_per_second = (t <= 60 && n == 2) ? 8.0 : 0.1;
      env.push_back(r);
    }
  }
  auto findings =
      AnalyzeChokepoints(BuildArchive(spec, std::move(env)), {});
  ASSERT_TRUE(HasFinding(findings, FindingKind::kSingleNodeHotspot));
  for (const Finding& f : findings) {
    if (f.kind == FindingKind::kSingleNodeHotspot) {
      EXPECT_NE(f.description.find("node341"), std::string::npos);
    }
  }
}

TEST(ChokepointTest, FindingsSortedBySeverityAndRender) {
  ArchiveSpec spec;
  spec.total = 100;
  spec.a_end = 70;
  spec.supersteps = {{2, 2, 2, 9}};
  auto findings = AnalyzeChokepoints(BuildArchive(spec), {});
  ASSERT_GE(findings.size(), 2u);
  for (size_t i = 1; i < findings.size(); ++i) {
    EXPECT_GE(static_cast<int>(findings[i - 1].severity),
              static_cast<int>(findings[i].severity));
  }
  std::string report = RenderFindings(findings);
  EXPECT_NE(report.find("CRITICAL"), std::string::npos);
  EXPECT_NE(report.find("dominant_phase"), std::string::npos);
  EXPECT_EQ(RenderFindings({}), "no choke-points found\n");
}

TEST(ChokepointTest, EmptyArchiveYieldsNothing) {
  PerformanceArchive empty;
  EXPECT_TRUE(AnalyzeChokepoints(empty, {}).empty());
}

// ------------------------------------------------------------ regression --

PerformanceArchive TimedArchive(double a_seconds, double b_seconds) {
  ArchiveSpec spec;
  spec.total = a_seconds + b_seconds;
  spec.a_end = a_seconds;
  return BuildArchive(spec);
}

TEST(RegressionTest, DetectsSlowdown) {
  PerformanceArchive baseline = TimedArchive(20, 30);
  PerformanceArchive candidate = TimedArchive(20, 45);  // PhaseB +50%
  RegressionReport report =
      CompareArchives(baseline, candidate, RegressionOptions{});
  ASSERT_TRUE(report.HasRegressions());
  bool found = false;
  for (const OperationDelta& delta : report.regressions) {
    if (delta.path == "Root/ProcessGraph") {
      found = true;
      EXPECT_NEAR(delta.relative_change, 0.5, 1e-9);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_TRUE(report.improvements.empty());
}

TEST(RegressionTest, DetectsImprovementAndTotal) {
  PerformanceArchive baseline = TimedArchive(20, 30);
  PerformanceArchive candidate = TimedArchive(10, 30);
  RegressionReport report = CompareArchives(baseline, candidate, {});
  EXPECT_FALSE(report.HasRegressions());
  ASSERT_FALSE(report.improvements.empty());
  EXPECT_EQ(report.improvements[0].path, "Root/PhaseA");
  EXPECT_DOUBLE_EQ(report.total_baseline_seconds, 50.0);
  EXPECT_DOUBLE_EQ(report.total_candidate_seconds, 40.0);
}

TEST(RegressionTest, WithinToleranceIsQuiet) {
  PerformanceArchive baseline = TimedArchive(20, 30);
  PerformanceArchive candidate = TimedArchive(21, 30);  // +5% < 10%
  RegressionReport report = CompareArchives(baseline, candidate, {});
  EXPECT_FALSE(report.HasRegressions());
  EXPECT_TRUE(report.improvements.empty());
}

TEST(RegressionTest, AddedAndRemovedOperations) {
  ArchiveSpec with_steps;
  with_steps.total = 50;
  with_steps.a_end = 20;
  with_steps.supersteps = {{1.0, 1.0}};
  PerformanceArchive baseline = BuildArchive(with_steps);
  PerformanceArchive candidate = TimedArchive(20, 30);
  RegressionReport report = CompareArchives(baseline, candidate, {});
  EXPECT_FALSE(report.removed.empty());
  EXPECT_TRUE(report.added.empty());
}

TEST(RegressionTest, MaxDepthLimitsComparison) {
  ArchiveSpec deep;
  deep.total = 50;
  deep.a_end = 20;
  deep.supersteps = {{1.0, 2.0}};
  PerformanceArchive baseline = BuildArchive(deep);
  deep.supersteps = {{1.0, 4.0}};  // deeper op changed
  deep.total = 50;                 // same domain timings
  PerformanceArchive candidate = BuildArchive(deep);
  RegressionOptions shallow;
  shallow.max_depth = 2;  // root + phases only
  RegressionReport report = CompareArchives(baseline, candidate, shallow);
  EXPECT_FALSE(report.HasRegressions());
  RegressionReport full = CompareArchives(baseline, candidate, {});
  EXPECT_TRUE(full.HasRegressions());
}

TEST(RegressionTest, TinyOperationsIgnored) {
  PerformanceArchive baseline = TimedArchive(0.01, 50);
  PerformanceArchive candidate = TimedArchive(0.04, 50);  // 4x but tiny
  RegressionReport report = CompareArchives(baseline, candidate, {});
  EXPECT_FALSE(report.HasRegressions());
}

// Root with same-named "Load" children back to back, one per duration.
PerformanceArchive DuplicateSiblingArchive(
    const std::vector<double>& load_seconds) {
  SimTime now;
  JobLogger logger([&now] { return now; });
  OpId root = logger.StartOperation(kNoOp, "Job", "job", "Root", "Root");
  double t = 0;
  for (double seconds : load_seconds) {
    OpId op = logger.StartOperation(root, "Job", "job", "Load", "Load");
    t += seconds;
    now = SimTime::Seconds(t);
    logger.EndOperation(op);
  }
  logger.EndOperation(root);
  PerformanceModel model("m");
  (void)model.AddRoot("Job", "Root");
  (void)model.AddOperation("Job", "Load", "Job", "Root");
  auto archive = Archiver().Build(model, logger.records(), {}, {});
  EXPECT_TRUE(archive.ok()) << archive.status();
  return std::move(*archive);
}

TEST(RegressionTest, DuplicateSiblingsAllGetStructuralSuffixes) {
  // Baseline loads once; the candidate needed two attempts of the same
  // total. The old encounter-order scheme ('\'' suffixes for later
  // duplicates only) silently paired the baseline's sole Load with the
  // candidate's FIRST attempt; now the shape change surfaces as
  // removed + added instead of a bogus per-operation delta.
  PerformanceArchive baseline = DuplicateSiblingArchive({20});
  PerformanceArchive candidate = DuplicateSiblingArchive({10, 10});
  RegressionReport report = CompareArchives(baseline, candidate, {});
  EXPECT_FALSE(report.HasRegressions());
  EXPECT_TRUE(report.improvements.empty());
  EXPECT_EQ(report.removed, std::vector<std::string>{"Root/Load"});
  EXPECT_EQ(report.added, (std::vector<std::string>{"Root/Load#1",
                                                    "Root/Load#2"}));
}

TEST(RegressionTest, DuplicateSiblingsComparePositionally) {
  // Same shape on both sides: the k-th duplicate matches the k-th, so a
  // slowdown is attributed to the right occurrence.
  PerformanceArchive baseline = DuplicateSiblingArchive({10, 10});
  PerformanceArchive candidate = DuplicateSiblingArchive({10, 20});
  RegressionReport report = CompareArchives(baseline, candidate, {});
  EXPECT_TRUE(report.added.empty());
  EXPECT_TRUE(report.removed.empty());
  bool found = false;
  for (const OperationDelta& delta : report.regressions) {
    if (delta.path == "Root/Load#2") {
      found = true;
      EXPECT_NEAR(delta.relative_change, 1.0, 1e-9);
    }
    EXPECT_NE(delta.path, "Root/Load#1");
  }
  EXPECT_TRUE(found) << "the second Load should be flagged, by suffix";
}

TEST(RegressionTest, RenderReport) {
  PerformanceArchive baseline = TimedArchive(20, 30);
  PerformanceArchive candidate = TimedArchive(30, 24);
  RegressionReport report = CompareArchives(baseline, candidate, {});
  std::string text = RenderRegressionReport(report);
  EXPECT_NE(text.find("regressions:"), std::string::npos);
  EXPECT_NE(text.find("improvements:"), std::string::npos);
  EXPECT_NE(text.find("Root/PhaseA"), std::string::npos);
}

}  // namespace
}  // namespace granula::core
