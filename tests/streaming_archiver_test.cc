// StreamingArchiver: online assembly must match the batch Archiver
// byte-for-byte on clean logs, stay valid at every stream prefix, keep
// memory bounded by the open-operation table, and survive dirty streams
// with the same defect classes the batch lint pass reports.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "granula/archive/archiver.h"
#include "granula/live/streaming_archiver.h"
#include "granula/models/models.h"
#include "graph/generators.h"
#include "platforms/giraph.h"
#include "platforms/graphmat.h"
#include "platforms/hadoop.h"
#include "platforms/pgxd.h"
#include "platforms/powergraph.h"

namespace granula::core {
namespace {

using platform::JobConfig;
using platform::JobResult;

// ----------------------------------------------------- platform runs ----

graph::Graph TestGraph() {
  graph::DatagenConfig config;
  config.num_vertices = 3000;
  config.avg_degree = 8.0;
  config.seed = 99;
  auto g = graph::GenerateDatagen(config);
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

algo::AlgorithmSpec SpecFor(algo::AlgorithmId id) {
  algo::AlgorithmSpec spec;
  spec.id = id;
  spec.source = 1;
  spec.max_iterations = 4;
  return spec;
}

JobResult RunPlatform(const std::string& name, algo::AlgorithmId id) {
  graph::Graph graph = TestGraph();
  algo::AlgorithmSpec spec = SpecFor(id);
  cluster::ClusterConfig cluster;
  JobConfig job;
  Result<JobResult> result = Status::Internal("unset");
  if (name == "giraph") {
    result = platform::GiraphPlatform().Run(graph, spec, cluster, job);
  } else if (name == "powergraph") {
    result = platform::PowerGraphPlatform().Run(graph, spec, cluster, job);
  } else if (name == "hadoop") {
    result = platform::HadoopPlatform().Run(graph, spec, cluster, job);
  } else if (name == "pgxd") {
    result = platform::PgxdPlatform().Run(graph, spec, cluster, job);
  } else {
    result = platform::GraphMatPlatform().Run(graph, spec, cluster, job);
  }
  EXPECT_TRUE(result.ok()) << name << ": " << result.status();
  return std::move(result).value();
}

PerformanceModel ModelFor(const std::string& name) {
  if (name == "giraph") return MakeGiraphModel();
  if (name == "powergraph") return MakePowerGraphModel();
  if (name == "hadoop") return MakeHadoopModel();
  if (name == "pgxd") return MakePgxdModel();
  return MakeGraphMatModel();
}

// ------------------------------------------------- synthetic streams ----

LogRecord Start(uint64_t seq, double t, uint64_t op, uint64_t parent,
                std::string actor_type, std::string mission_type,
                std::string mission_id = "") {
  LogRecord r;
  r.kind = LogRecord::Kind::kStartOp;
  r.seq = seq;
  r.time = SimTime::Seconds(t);
  r.op_id = op;
  r.parent_id = parent;
  r.actor_type = std::move(actor_type);
  r.mission_type = std::move(mission_type);
  r.mission_id = std::move(mission_id);
  return r;
}

LogRecord End(uint64_t seq, double t, uint64_t op) {
  LogRecord r;
  r.kind = LogRecord::Kind::kEndOp;
  r.seq = seq;
  r.time = SimTime::Seconds(t);
  r.op_id = op;
  return r;
}

LogRecord Info(uint64_t seq, double t, uint64_t op, std::string name,
               Json value) {
  LogRecord r;
  r.kind = LogRecord::Kind::kInfo;
  r.seq = seq;
  r.time = SimTime::Seconds(t);
  r.op_id = op;
  r.info_name = std::move(name);
  r.info_value = std::move(value);
  return r;
}

std::string BatchJson(const PerformanceModel& model,
                      const std::vector<LogRecord>& records) {
  // Repair tolerance: the streaming archiver always repairs (strict mode
  // would defeat live monitoring), so the batch reference must too.
  Archiver::Options options;
  options.tolerance = Archiver::Tolerance::kRepair;
  auto archive = Archiver(options).Build(model, records, {}, {});
  EXPECT_TRUE(archive.ok()) << archive.status();
  if (!archive.ok()) return "<batch failed>";
  return archive->ToJsonString();
}

std::string StreamedJson(const PerformanceModel& model,
                         const std::vector<LogRecord>& records) {
  StreamingArchiver streaming(model);
  streaming.AppendAll(records);
  streaming.Finish();
  auto snapshot = streaming.Snapshot();
  EXPECT_TRUE(snapshot.ok()) << snapshot.status();
  return snapshot->ToJsonString();
}

// ----------------------------------------------- batch equivalence ------

TEST(StreamingEquivalenceTest, MatchesBatchOnEveryPlatformAndAlgorithm) {
  const std::string platforms[] = {"giraph", "powergraph", "hadoop", "pgxd",
                                   "graphmat"};
  const algo::AlgorithmId algorithms[] = {algo::AlgorithmId::kBfs,
                                          algo::AlgorithmId::kPageRank};
  for (const std::string& platform_name : platforms) {
    for (algo::AlgorithmId algorithm : algorithms) {
      SCOPED_TRACE(platform_name +
                   (algorithm == algo::AlgorithmId::kBfs ? "/BFS"
                                                         : "/PageRank"));
      JobResult result = RunPlatform(platform_name, algorithm);
      PerformanceModel model = ModelFor(platform_name);
      std::map<std::string, std::string> metadata = {
          {"platform", platform_name}};

      auto env_copy = result.environment;
      auto batch = Archiver().Build(model, result.records,
                                    std::move(env_copy), metadata);
      ASSERT_TRUE(batch.ok()) << batch.status();

      StreamingArchiver streaming(model);
      streaming.SetJobMetadata(metadata);
      streaming.SetEnvironment(result.environment);
      streaming.AppendAll(result.records);
      streaming.Finish();
      auto snapshot = streaming.Snapshot();
      ASSERT_TRUE(snapshot.ok()) << snapshot.status();

      EXPECT_TRUE(streaming.complete());
      EXPECT_EQ(streaming.stats().quarantined_records, 0u);
      EXPECT_EQ(batch->ToJsonString(), snapshot->ToJsonString());
    }
  }
}

TEST(StreamingEquivalenceTest, MatchesBatchWithModelLevelTruncation) {
  JobResult result = RunPlatform("giraph", algo::AlgorithmId::kBfs);
  PerformanceModel model = MakeGiraphModel();

  Archiver::Options batch_options;
  batch_options.max_level = 2;
  auto batch = Archiver(batch_options).Build(model, result.records, {}, {});
  ASSERT_TRUE(batch.ok()) << batch.status();

  StreamingArchiver::Options streaming_options;
  streaming_options.max_level = 2;
  StreamingArchiver streaming(model, streaming_options);
  streaming.AppendAll(result.records);
  streaming.Finish();
  auto snapshot = streaming.Snapshot();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();
  EXPECT_EQ(batch->ToJsonString(), snapshot->ToJsonString());
}

// --------------------------------------------- prefix snapshot validity --

TEST(StreamingSnapshotTest, EveryTestedPrefixYieldsAValidArchive) {
  JobResult result = RunPlatform("giraph", algo::AlgorithmId::kBfs);
  PerformanceModel model = MakeGiraphModel();
  StreamingArchiver streaming(model);

  const size_t n = result.records.size();
  ASSERT_GT(n, 100u);
  const size_t step = n / 23 + 1;
  size_t valid_snapshots = 0;
  for (size_t i = 0; i < n; ++i) {
    streaming.Append(result.records[i]);
    if (i % step != 0 && i + 1 != n) continue;
    auto snapshot = streaming.Snapshot();
    if (!snapshot.ok()) {
      // Only legitimate before any root StartOp has arrived.
      EXPECT_EQ(streaming.stats().records_ingested, 0u) << snapshot.status();
      continue;
    }
    ++valid_snapshots;
    ASSERT_NE(snapshot->root, nullptr);
    // Well-formed interval on every operation, in flight or not.
    snapshot->root->Visit([](const ArchivedOperation& op) {
      EXPECT_TRUE(op.HasInfo("StartTime"));
      EXPECT_TRUE(op.HasInfo("EndTime"));
      EXPECT_LE(op.StartTime(), op.EndTime());
    });
    // The snapshot is a real PerformanceArchive: it round-trips.
    std::string json = snapshot->ToJsonString();
    auto reparsed = PerformanceArchive::FromJsonString(json);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status();
    EXPECT_EQ(json, reparsed->ToJsonString());
    // In-flight marker present exactly while the job is still open.
    if (i + 1 < n) {
      EXPECT_TRUE(snapshot->root->HasInfo("InFlight"));
    }
  }
  EXPECT_GE(valid_snapshots, 20u);

  streaming.Finish();
  auto final_snapshot = streaming.Snapshot();
  ASSERT_TRUE(final_snapshot.ok());
  EXPECT_FALSE(final_snapshot->root->HasInfo("InFlight"));
}

TEST(StreamingSnapshotTest, InFlightOperationsCloseAtTheWatermark) {
  PerformanceModel model = MakeGiraphModel();
  StreamingArchiver streaming(model);
  streaming.Append(Start(0, 0.0, 1, kNoOp, ops::kJobActor, ops::kJobMission,
                         "GiraphJob"));
  streaming.Append(Start(1, 1.0, 2, 1, ops::kJobActor, ops::kLoadGraph));
  streaming.Append(Info(2, 2.0, 2, "BytesRead", Json(int64_t{42})));

  auto snapshot = streaming.Snapshot();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();
  const ArchivedOperation& root = *snapshot->root;
  EXPECT_TRUE(root.HasInfo("InFlight"));
  EXPECT_EQ(root.EndTime(), SimTime::Seconds(2.0));  // watermark
  ASSERT_EQ(root.children.size(), 1u);
  EXPECT_TRUE(root.children[0]->HasInfo("InFlight"));
  EXPECT_EQ(root.children[0]->InfoNumber("BytesRead"), 42.0);

  // Once the child ends, its snapshot form is final: real end, no marker.
  streaming.Append(End(3, 3.0, 2));
  snapshot = streaming.Snapshot();
  ASSERT_TRUE(snapshot.ok());
  ASSERT_EQ(snapshot->root->children.size(), 1u);
  const ArchivedOperation& child = *snapshot->root->children[0];
  EXPECT_FALSE(child.HasInfo("InFlight"));
  EXPECT_EQ(child.EndTime(), SimTime::Seconds(3.0));
  EXPECT_TRUE(snapshot->root->HasInfo("InFlight"));
}

TEST(StreamingSnapshotTest, EmptyStreamHasNoRoot) {
  StreamingArchiver streaming(MakeGiraphModel());
  EXPECT_FALSE(streaming.Snapshot().ok());
  streaming.Finish();
  EXPECT_FALSE(streaming.Snapshot().ok());
}

// -------------------------------------------------- bounded memory ------

TEST(StreamingMemoryTest, SequentialOperationsAreEvictedAsTheyClose) {
  PerformanceModel model = MakeGiraphModel();
  StreamingArchiver streaming(model);
  streaming.Append(Start(0, 0.0, 1, kNoOp, ops::kJobActor, ops::kJobMission,
                         "GiraphJob"));
  const uint64_t kChildren = 500;
  uint64_t seq = 1;
  for (uint64_t i = 0; i < kChildren; ++i) {
    const uint64_t op = 2 + i;
    const double t = 1.0 + static_cast<double>(i);
    streaming.Append(Start(seq++, t, op, 1, "Worker", "Chunk"));
    streaming.Append(Info(seq++, t + 0.2, op, "Items", Json(int64_t(i))));
    streaming.Append(End(seq++, t + 0.5, op));
    // The closed child must be evicted immediately: only the root stays.
    EXPECT_EQ(streaming.stats().open_operations, 1u);
  }
  streaming.Append(End(seq++, 1000.0, 1));

  const StreamingArchiver::Stats& stats = streaming.stats();
  EXPECT_EQ(stats.open_operations, 0u);
  EXPECT_EQ(stats.peak_open_operations, 2u);  // root + one child, ever
  EXPECT_EQ(stats.finalized_operations, kChildren + 1);
  EXPECT_EQ(stats.quarantined_records, 0u);
  EXPECT_TRUE(streaming.complete());
}

TEST(StreamingMemoryTest, RealRunPeaksFarBelowLogSize) {
  JobResult result = RunPlatform("powergraph", algo::AlgorithmId::kBfs);
  StreamingArchiver streaming(MakePowerGraphModel());
  streaming.AppendAll(result.records);
  streaming.Finish();
  const StreamingArchiver::Stats& stats = streaming.stats();
  EXPECT_EQ(stats.records_ingested, result.records.size());
  EXPECT_GT(stats.finalized_operations, 100u);
  // The open table never held more than a sliver of the operations.
  EXPECT_LT(stats.peak_open_operations, stats.finalized_operations / 4);
}

// ------------------------------------------------------ dirty streams ---

TEST(StreamingLintTest, MatchesBatchOnRepairableDefects) {
  PerformanceModel model = MakeGiraphModel();
  // In-order stream with one of each in-place-repairable defect:
  // duplicate start, duplicate end, inverted end, orphan end, orphan
  // info, missing end (op 4 never ends). Op 3 — an unmodeled child that
  // outlives op 2's first EndOp — keeps op 2 in the open table, so the
  // duplicate EndOp at seq 6 is classified exactly as batch lint does
  // (an op that closed AND finalized would make it an orphan instead;
  // that divergence is documented on the class).
  std::vector<LogRecord> records;
  records.push_back(Start(0, 0.0, 1, kNoOp, ops::kJobActor, ops::kJobMission,
                          "GiraphJob"));
  records.push_back(Start(1, 1.0, 2, 1, ops::kJobActor, ops::kLoadGraph));
  records.push_back(Start(2, 1.5, 2, 1, ops::kJobActor, ops::kLoadGraph));
  records.push_back(End(3, 0.5, 2));  // inverted: precedes its start
  records.push_back(Start(4, 1.2, 3, 2, "Worker", "LoadPartition"));
  records.push_back(End(5, 2.0, 2));
  records.push_back(End(6, 2.5, 2));  // duplicate: first valid end wins
  records.push_back(End(7, 1.8, 3));
  records.push_back(End(8, 3.0, 77));              // orphan end
  records.push_back(Info(9, 3.0, 88, "X", Json(int64_t{1})));  // orphan info
  records.push_back(Start(10, 4.0, 4, 1, ops::kJobActor, ops::kProcessGraph));
  records.push_back(End(11, 9.0, 1));  // root ends; op 4 never does

  EXPECT_EQ(BatchJson(model, records), StreamedJson(model, records));

  StreamingArchiver streaming(model);
  streaming.AppendAll(records);
  streaming.Finish();
  LintReport report;
  report.findings = streaming.findings();
  EXPECT_EQ(report.CountOf(LintDefect::kDuplicateStartOp), 1u);
  EXPECT_EQ(report.CountOf(LintDefect::kDuplicateEndOp), 1u);
  EXPECT_EQ(report.CountOf(LintDefect::kEndBeforeStart), 1u);
  EXPECT_EQ(report.CountOf(LintDefect::kOrphanEndOp), 1u);
  EXPECT_EQ(report.CountOf(LintDefect::kOrphanInfo), 1u);
  EXPECT_EQ(report.CountOf(LintDefect::kMissingEndTime), 1u);
  EXPECT_EQ(streaming.stats().quarantined_records, 5u);
}

TEST(StreamingLintTest, ExtraRootIsQuarantinedAtFinish) {
  PerformanceModel model = MakeGiraphModel();
  StreamingArchiver streaming(model);
  streaming.Append(Start(0, 0.0, 1, kNoOp, ops::kJobActor, ops::kJobMission,
                         "GiraphJob"));
  streaming.Append(Start(1, 1.0, 2, 1, ops::kJobActor, ops::kLoadGraph));
  streaming.Append(End(2, 2.0, 2));
  // A second parentless root with a smaller subtree.
  streaming.Append(Start(3, 2.5, 9, kNoOp, "Stray", "Noise"));
  streaming.Append(End(4, 2.6, 9));
  streaming.Append(End(5, 3.0, 1));
  streaming.Finish();

  LintReport report;
  report.findings = streaming.findings();
  EXPECT_EQ(report.CountOf(LintDefect::kMultipleRoots), 1u);
  auto snapshot = streaming.Snapshot();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();
  EXPECT_EQ(snapshot->root->mission_id, "GiraphJob");
  EXPECT_EQ(snapshot->OperationCount(), 2u);  // stray root not in the tree
}

TEST(StreamingLintTest, SelfParentIsQuarantinedOnArrival) {
  StreamingArchiver streaming(MakeGiraphModel());
  streaming.Append(Start(0, 0.0, 1, kNoOp, ops::kJobActor, ops::kJobMission,
                         "GiraphJob"));
  streaming.Append(Start(1, 1.0, 5, 5, "Loop", "Loop"));
  streaming.Append(End(2, 2.0, 1));
  streaming.Finish();
  LintReport report;
  report.findings = streaming.findings();
  EXPECT_EQ(report.CountOf(LintDefect::kParentCycle), 1u);
  EXPECT_EQ(streaming.stats().quarantined_records, 1u);
  EXPECT_TRUE(streaming.Snapshot().ok());
}

TEST(StreamingLintTest, RecordsAfterFinishAreIgnored) {
  StreamingArchiver streaming(MakeGiraphModel());
  streaming.Append(Start(0, 0.0, 1, kNoOp, ops::kJobActor, ops::kJobMission,
                         "GiraphJob"));
  streaming.Append(End(1, 1.0, 1));
  streaming.Finish();
  streaming.Append(Start(2, 2.0, 7, kNoOp, "Late", "Late"));
  EXPECT_EQ(streaming.stats().records_ingested, 2u);
  auto snapshot = streaming.Snapshot();
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->OperationCount(), 1u);
}

}  // namespace
}  // namespace granula::core
