#include "common/thread_pool.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace granula {
namespace {

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr uint64_t kCount = 10000;
  std::vector<std::atomic<uint32_t>> hits(kCount);
  pool.ParallelFor(0, kCount, 97, [&](uint64_t, uint64_t lo, uint64_t hi) {
    for (uint64_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (uint64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1u) << i;
  }
}

TEST(ThreadPoolTest, ChunkBoundsMatchGrainArithmetic) {
  ThreadPool pool(3);
  std::mutex mu;
  std::vector<std::array<uint64_t, 3>> seen;
  pool.ParallelFor(100, 175, 30, [&](uint64_t c, uint64_t lo, uint64_t hi) {
    std::lock_guard<std::mutex> lock(mu);
    seen.push_back({c, lo, hi});
  });
  ASSERT_EQ(seen.size(), 3u);
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen[0], (std::array<uint64_t, 3>{0, 100, 130}));
  EXPECT_EQ(seen[1], (std::array<uint64_t, 3>{1, 130, 160}));
  EXPECT_EQ(seen[2], (std::array<uint64_t, 3>{2, 160, 175}));
}

TEST(ThreadPoolTest, DecompositionIndependentOfThreadCount) {
  // The determinism contract: chunk (index, begin, end) triples depend only
  // on (range, grain), never on how many threads execute them.
  auto decompose = [](ThreadPool& pool) {
    std::mutex mu;
    std::vector<std::array<uint64_t, 3>> chunks;
    pool.ParallelFor(7, 5000, 311, [&](uint64_t c, uint64_t lo, uint64_t hi) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.push_back({c, lo, hi});
    });
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  ThreadPool single(1);
  ThreadPool wide(8);
  EXPECT_EQ(decompose(single), decompose(wide));
}

TEST(ThreadPoolTest, ResizeSweepsThreadCounts) {
  ThreadPool pool(1);
  for (int n : {1, 4, 2, 8}) {
    pool.Resize(n);
    EXPECT_EQ(pool.num_threads(), n);
    std::atomic<uint64_t> sum{0};
    pool.ParallelFor(0, 1000, 10, [&](uint64_t, uint64_t lo, uint64_t hi) {
      uint64_t local = 0;
      for (uint64_t i = lo; i < hi; ++i) local += i;
      sum.fetch_add(local);
    });
    EXPECT_EQ(sum.load(), 1000u * 999u / 2);
  }
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::atomic<uint64_t> inner_total{0};
  pool.ParallelFor(0, 8, 1, [&](uint64_t, uint64_t, uint64_t) {
    // A reentrant call must not deadlock waiting for the (busy) workers;
    // it runs all chunks on the calling thread.
    pool.ParallelFor(0, 16, 4, [&](uint64_t, uint64_t lo, uint64_t hi) {
      inner_total.fetch_add(hi - lo);
    });
  });
  EXPECT_EQ(inner_total.load(), 8u * 16u);
}

TEST(ThreadPoolTest, EmptyRangeNeverInvokesFn) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(5, 5, 1, [&](uint64_t, uint64_t, uint64_t) {
    called = true;
  });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ExceptionsPropagateToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 64, 1,
                       [&](uint64_t c, uint64_t, uint64_t) {
                         if (c == 13) throw std::runtime_error("chunk 13");
                       }),
      std::runtime_error);
  // The pool stays usable after a failed job.
  std::atomic<uint64_t> count{0};
  pool.ParallelFor(0, 64, 1, [&](uint64_t, uint64_t lo, uint64_t hi) {
    count.fetch_add(hi - lo);
  });
  EXPECT_EQ(count.load(), 64u);
}

TEST(ThreadPoolTest, NumChunksEdgeCases) {
  EXPECT_EQ(ThreadPool::NumChunks(0, 10), 0u);
  EXPECT_EQ(ThreadPool::NumChunks(1, 10), 1u);
  EXPECT_EQ(ThreadPool::NumChunks(10, 10), 1u);
  EXPECT_EQ(ThreadPool::NumChunks(11, 10), 2u);
  EXPECT_EQ(ThreadPool::NumChunks(7, 0), 7u);  // grain 0 treated as 1
}

TEST(ThreadPoolTest, ChunkedGrainBoundsChunkCount) {
  // Small counts stay at the minimum grain (one chunk).
  EXPECT_EQ(ChunkedGrain(100), 256u);
  // Large counts split into at most max_chunks chunks.
  uint64_t grain = ChunkedGrain(1'000'000);
  EXPECT_LE(ThreadPool::NumChunks(1'000'000, grain), 64u);
  EXPECT_GE(grain, 256u);
  // Depends only on the inputs: same value every call.
  EXPECT_EQ(ChunkedGrain(1'000'000), grain);
}

}  // namespace
}  // namespace granula
