// End-to-end tests for the embedded HTTP archive daemon: real sockets
// against a real repository. Setup that uses the shared host ThreadPool
// (archiving) happens before Start() — the server's workers occupy the
// pool as one long job until Stop().

#include "granula/serve/server.h"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/socket.h"
#include "common/strings.h"
#include "granula/archive/archiver.h"
#include "granula/archive/gba.h"
#include "granula/archive/repository.h"
#include "granula/model/performance_model.h"
#include "granula/monitor/job_logger.h"
#include "granula/serve/service.h"

namespace granula::serve {
namespace {

using core::ArchiveFormat;
using core::ArchiveRepository;
using core::PerformanceArchive;

PerformanceArchive MakeArchive(const std::string& platform,
                               const std::string& algorithm, double seconds,
                               int supersteps = 4) {
  SimTime now;
  core::JobLogger logger([&now] { return now; });
  core::OpId root =
      logger.StartOperation(core::kNoOp, "Job", "job", "Root", "Root");
  for (int s = 0; s < supersteps; ++s) {
    core::OpId step = logger.StartOperation(
        root, "Master", "master", "Superstep", "Superstep-" +
                                                   std::to_string(s));
    logger.AddInfo(step, "Items", Json(int64_t{s * 10}));
    now += SimTime::Seconds(seconds / supersteps);
    logger.EndOperation(step);
  }
  now = SimTime::Seconds(seconds);
  logger.EndOperation(root);
  core::PerformanceModel model("m");
  (void)model.AddRoot("Job", "Root");
  (void)model.AddOperation("Master", "Superstep", "Job", "Root");
  auto archive = core::Archiver().Build(
      model, logger.records(), {},
      {{"platform", platform}, {"algorithm", algorithm}});
  EXPECT_TRUE(archive.ok());
  return std::move(archive).value();
}

std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/serve_" + name;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return dir;
}

int64_t g_fake_now = 1000;
int64_t FakeNow() { return g_fake_now; }

class WallClockGuard {
 public:
  ~WallClockGuard() { ArchiveRepository::SetWallClockForTest(nullptr); }
};

// ----------------------------------------------------- HTTP client ------

struct ClientResponse {
  int status = 0;
  std::map<std::string, std::string> headers;  // lowercased names
  std::string body;
};

// Reads one full response off `socket` (Content-Length framing, matching
// what the server emits).
Result<ClientResponse> ReadResponse(TcpSocket& socket) {
  std::string buffer;
  size_t header_end = std::string::npos;
  while ((header_end = buffer.find("\r\n\r\n")) == std::string::npos) {
    auto outcome = socket.Read(buffer);
    if (outcome != TcpSocket::ReadOutcome::kData) {
      return Status::IoError("connection closed before response headers");
    }
  }
  ClientResponse response;
  const std::string head = buffer.substr(0, header_end);
  const std::vector<std::string> lines = StrSplit(head, '\n');
  if (lines.empty() || lines[0].rfind("HTTP/1.1 ", 0) != 0) {
    return Status::Corruption("bad status line: " + head);
  }
  response.status = std::atoi(lines[0].c_str() + 9);
  for (size_t i = 1; i < lines.size(); ++i) {
    std::string_view line = StrTrim(lines[i]);
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    std::string name(line.substr(0, colon));
    for (char& c : name) c = static_cast<char>(std::tolower(c));
    response.headers[name] = std::string(StrTrim(line.substr(colon + 1)));
  }
  size_t body_len = 0;
  auto it = response.headers.find("content-length");
  if (it != response.headers.end()) {
    body_len = static_cast<size_t>(std::atoll(it->second.c_str()));
  }
  const size_t body_start = header_end + 4;
  while (buffer.size() < body_start + body_len) {
    auto outcome = socket.Read(buffer);
    if (outcome != TcpSocket::ReadOutcome::kData) {
      return Status::IoError("connection closed mid-body");
    }
  }
  response.body = buffer.substr(body_start, body_len);
  return response;
}

Result<ClientResponse> Fetch(int port, const std::string& target,
                             const std::vector<std::string>& headers = {},
                             const std::string& method = "GET") {
  GRANULA_ASSIGN_OR_RETURN(TcpSocket socket,
                           TcpConnect("127.0.0.1", port, 2000));
  GRANULA_RETURN_IF_ERROR(socket.SetTimeouts(5000, 5000));
  std::string request = method + " " + target + " HTTP/1.1\r\n";
  for (const std::string& header : headers) request += header + "\r\n";
  request += "Connection: close\r\n\r\n";
  GRANULA_RETURN_IF_ERROR(socket.WriteAll(request));
  return ReadResponse(socket);
}

Json MustParse(const std::string& text) {
  auto parsed = Json::Parse(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status() << " in: " << text;
  return parsed.ok() ? *parsed : Json();
}

// ----------------------------------------------------- fixture ----------

// One repository + running server per fixture instance. Archives are
// written before Start() (pool constraint, see the file comment).
class ServeTest : public testing::Test {
 protected:
  void StartServer(const std::string& dir_name, int timeout_ms = 5000,
                   ArchiveFormat format = ArchiveFormat::kGba) {
    ArchiveRepository::SetWallClockForTest(&FakeNow);
    g_fake_now = 1000;
    repo_ = std::make_unique<ArchiveRepository>(FreshDir(dir_name));
    repo_->set_write_format(format);
    ASSERT_TRUE(repo_->Save(MakeArchive("Giraph", "BFS", 10), "g-bfs").ok());
    g_fake_now = 2000;
    ASSERT_TRUE(
        repo_->Save(MakeArchive("Giraph", "PageRank", 20), "g-pr").ok());
    g_fake_now = 3000;
    ASSERT_TRUE(repo_->Save(MakeArchive("Pgxd", "BFS", 30), "p-bfs").ok());

    service_ = std::make_unique<ArchiveService>(repo_.get(),
                                                ServiceOptions{});
    ServerOptions options;
    options.port = 0;  // free port
    options.timeout_ms = timeout_ms;
    server_ = std::make_unique<HttpServer>(service_.get(), options);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
    ArchiveRepository::SetWallClockForTest(nullptr);
    ArchiveRepository::SetIoFaultHookForTest(nullptr);
  }

  int port() const { return server_->port(); }

  std::unique_ptr<ArchiveRepository> repo_;
  std::unique_ptr<ArchiveService> service_;
  std::unique_ptr<HttpServer> server_;
};

// ----------------------------------------------------- tests ------------

TEST_F(ServeTest, ListServedFromIndexWithoutBodyReads) {
  StartServer("list");
  const uint64_t before = ArchiveRepository::BodyReadCount();

  auto all = Fetch(port(), "/archives");
  ASSERT_TRUE(all.ok()) << all.status();
  EXPECT_EQ(all->status, 200);
  Json body = MustParse(all->body);
  EXPECT_EQ(body.GetInt("count"), 3);
  ASSERT_EQ(body.Find("archives")->size(), 3u);
  EXPECT_EQ(body.Find("archives")->AsArray()[0].GetString("name"), "g-bfs");

  auto filtered = Fetch(port(), "/archives?platform=Giraph&algorithm=BFS");
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(filtered->status, 200);
  EXPECT_EQ(MustParse(filtered->body).GetInt("count"), 1);

  auto window = Fetch(port(), "/archives?since=1500&until=2500");
  ASSERT_TRUE(window.ok());
  Json window_body = MustParse(window->body);
  EXPECT_EQ(window_body.GetInt("count"), 1);
  EXPECT_EQ(window_body.Find("archives")->AsArray()[0].GetString("name"),
            "g-pr");

  EXPECT_EQ(ArchiveRepository::BodyReadCount(), before)
      << "GET /archives must answer from the index alone";
}

TEST_F(ServeTest, BadListQueriesAre400) {
  StartServer("badquery");
  auto unknown = Fetch(port(), "/archives?nonsense=1");
  ASSERT_TRUE(unknown.ok());
  EXPECT_EQ(unknown->status, 400);
  EXPECT_NE(MustParse(unknown->body)
                .Find("error")
                ->GetString("message")
                .find("nonsense"),
            std::string::npos);

  auto bad_since = Fetch(port(), "/archives?since=yesterday");
  ASSERT_TRUE(bad_since.ok());
  EXPECT_EQ(bad_since->status, 400);

  auto inverted = Fetch(port(), "/archives?since=2000&until=1000");
  ASSERT_TRUE(inverted.ok());
  EXPECT_EQ(inverted->status, 400);
  EXPECT_EQ(MustParse(inverted->body).Find("error")->GetString("code"),
            "invalid_argument");
}

TEST_F(ServeTest, ArchiveFetchFullAndShallow) {
  StartServer("archive");
  auto full = Fetch(port(), "/archives/g-bfs");
  ASSERT_TRUE(full.ok()) << full.status();
  EXPECT_EQ(full->status, 200);
  auto expected = repo_->Load("g-bfs");
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(full->body, expected->ToJsonString(2));

  auto shallow = Fetch(port(), "/archives/g-bfs?depth=1");
  ASSERT_TRUE(shallow.ok());
  EXPECT_EQ(shallow->status, 200);
  Json tree = MustParse(shallow->body);
  const Json* root = tree.Find("operation");
  if (root == nullptr) root = &tree;  // tolerate either nesting
  EXPECT_LT(shallow->body.size(), full->body.size())
      << "depth=1 must cut the tree";

  auto bad_depth = Fetch(port(), "/archives/g-bfs?depth=zero");
  ASSERT_TRUE(bad_depth.ok());
  EXPECT_EQ(bad_depth->status, 400);

  auto missing = Fetch(port(), "/archives/no-such-archive");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);
  EXPECT_EQ(MustParse(missing->body).Find("error")->GetString("code"),
            "not_found");
}

TEST_F(ServeTest, SubtreeFetchIsDecodedAndSerializedOncePerProcess) {
  StartServer("subtree");
  auto first = Fetch(port(), "/archives/g-bfs/subtree/Root/Superstep-1");
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->status, 200);
  Json op = MustParse(first->body);
  EXPECT_EQ(op.GetString("mission_id"), "Superstep-1");

  // A repeat fetch is answered from the serialized-response LRU: no body
  // read, no second decode, byte-identical bytes.
  const uint64_t body_reads = ArchiveRepository::BodyReadCount();
  auto second = Fetch(port(), "/archives/g-bfs/subtree/Root/Superstep-1");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->status, 200);
  EXPECT_EQ(second->body, first->body);
  EXPECT_EQ(ArchiveRepository::BodyReadCount(), body_reads)
      << "the second fetch must be served from cache, not from disk";

  // Asking for the SAME subtree in the other format misses the response
  // cache (different bytes) but hits the repository's shared decoded-
  // subtree LRU: still no disk read.
  const auto repo_before = repo_->cache_stats();
  auto gba = Fetch(port(), "/archives/g-bfs/subtree/Root/Superstep-1",
                   {"Accept: application/x-granula-gba"});
  ASSERT_TRUE(gba.ok());
  EXPECT_EQ(gba->status, 200);
  EXPECT_EQ(ArchiveRepository::BodyReadCount(), body_reads);
  EXPECT_EQ(repo_->cache_stats().hits, repo_before.hits + 1);

  auto stats = Fetch(port(), "/stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(MustParse(stats->body).Find("response_cache")->GetInt("hits"), 1);

  auto missing = Fetch(port(), "/archives/g-bfs/subtree/Root/NoSuchStep");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);
}

TEST_F(ServeTest, GbaContentNegotiation) {
  StartServer("gba");
  auto subtree = repo_->FetchSubtree("g-bfs", "Root/Superstep-2");
  ASSERT_TRUE(subtree.ok());
  const std::string expected = core::EncodeGbaSubtree(**subtree);

  auto via_accept =
      Fetch(port(), "/archives/g-bfs/subtree/Root/Superstep-2",
            {"Accept: application/x-granula-gba"});
  ASSERT_TRUE(via_accept.ok()) << via_accept.status();
  EXPECT_EQ(via_accept->status, 200);
  EXPECT_EQ(via_accept->headers.at("content-type"),
            "application/x-granula-gba");
  EXPECT_EQ(via_accept->body, expected)
      << "negotiated GBA bytes must match EncodeGbaSubtree exactly";

  auto via_query =
      Fetch(port(), "/archives/g-bfs/subtree/Root/Superstep-2?format=gba");
  ASSERT_TRUE(via_query.ok());
  EXPECT_EQ(via_query->body, expected);

  // The bytes are a standalone GBA file.
  auto reader = core::GbaReader::Open(via_query->body);
  ASSERT_TRUE(reader.ok()) << reader.status();
  auto decoded = reader->DecodeArchive();
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->root->ToJson().Dump(0), (*subtree)->ToJson().Dump(0));
}

TEST_F(ServeTest, EtagRoundTripAnd304) {
  StartServer("etag");
  auto first = Fetch(port(), "/archives/g-bfs");
  ASSERT_TRUE(first.ok());
  const std::string tag = first->headers.at("etag");
  ASSERT_FALSE(tag.empty());

  auto revalidated =
      Fetch(port(), "/archives/g-bfs", {"If-None-Match: " + tag});
  ASSERT_TRUE(revalidated.ok());
  EXPECT_EQ(revalidated->status, 304);
  EXPECT_TRUE(revalidated->body.empty());
  EXPECT_EQ(revalidated->headers.at("etag"), tag);

  auto stale = Fetch(port(), "/archives/g-bfs",
                     {"If-None-Match: \"gdeadbeefdeadbeef\""});
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(stale->status, 200);

  // Lists revalidate too, and their tag covers the whole answer.
  auto list = Fetch(port(), "/archives");
  ASSERT_TRUE(list.ok());
  const std::string list_tag = list->headers.at("etag");
  auto list_304 = Fetch(port(), "/archives",
                        {"If-None-Match: " + list_tag});
  ASSERT_TRUE(list_304.ok());
  EXPECT_EQ(list_304->status, 304);
}

TEST_F(ServeTest, SaveOverwriteInvalidatesEtagAndCache) {
  StartServer("overwrite");
  WallClockGuard guard;

  // Prime: subtree response + its validator + a cached subtree.
  auto subtree = Fetch(port(), "/archives/g-bfs/subtree/Root/Superstep-1");
  ASSERT_TRUE(subtree.ok());
  const std::string tag = subtree->headers.at("etag");
  auto fresh = Fetch(port(), "/archives/g-bfs/subtree/Root/Superstep-1",
                     {"If-None-Match: " + tag});
  ASSERT_TRUE(fresh.ok());
  ASSERT_EQ(fresh->status, 304);
  const auto stats_before = repo_->cache_stats();

  // Overwrite the archive at a later wall-clock time. (Save() does not
  // touch the host pool, so doing it while the server runs is safe.)
  g_fake_now = 9000;
  PerformanceArchive updated = MakeArchive("Giraph", "BFS", 99);
  ASSERT_TRUE(repo_->Save(updated, "g-bfs").ok());

  // The old validator must stop matching: a conditional GET now returns
  // 200 with a NEW tag and the fresh content...
  auto after = Fetch(port(), "/archives/g-bfs/subtree/Root/Superstep-1",
                     {"If-None-Match: " + tag});
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->status, 200) << "old ETag validated stale content";
  EXPECT_NE(after->headers.at("etag"), tag);

  // ...and the LRU entry for the old body must be gone: the re-fetch was
  // a miss, not a stale hit.
  const auto stats_after = repo_->cache_stats();
  EXPECT_EQ(stats_after.misses, stats_before.misses + 1)
      << "Save() left a stale subtree in the cache";
  Json op = MustParse(after->body);
  EXPECT_EQ(op.Find("infos")->Find("Items")->GetInt("value"), 10);
}

TEST_F(ServeTest, FindingsAndQuarantineEndpoints) {
  StartServer("findings");
  auto findings = Fetch(port(), "/archives/g-pr/findings");
  ASSERT_TRUE(findings.ok()) << findings.status();
  EXPECT_EQ(findings->status, 200);
  Json body = MustParse(findings->body);
  EXPECT_EQ(body.GetString("archive"), "g-pr");
  ASSERT_NE(body.Find("findings"), nullptr);
  // A dominant single phase exists by construction; every finding row
  // carries the full shape.
  if (body.Find("findings")->size() > 0) {
    const Json& first = body.Find("findings")->AsArray()[0];
    EXPECT_FALSE(first.GetString("kind").empty());
    EXPECT_FALSE(first.GetString("severity").empty());
  }

  auto quarantine = Fetch(port(), "/archives/g-pr/quarantine");
  ASSERT_TRUE(quarantine.ok());
  EXPECT_EQ(quarantine->status, 200);
  Json q = MustParse(quarantine->body);
  EXPECT_TRUE(q.GetBool("clean"));

  auto missing = Fetch(port(), "/archives/ghost/findings");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);
}

TEST_F(ServeTest, StatsEndpointAndMethodHandling) {
  StartServer("stats");
  ASSERT_TRUE(Fetch(port(), "/archives").ok());
  ASSERT_TRUE(
      Fetch(port(), "/archives/g-bfs/subtree/Root/Superstep-0").ok());
  ASSERT_TRUE(
      Fetch(port(), "/archives/g-bfs/subtree/Root/Superstep-0").ok());

  auto stats = Fetch(port(), "/stats");
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->status, 200);
  Json body = MustParse(stats->body);
  EXPECT_GE(body.Find("requests")->GetInt("total"), 3);
  EXPECT_GE(body.Find("response_cache")->GetInt("hits"), 1);
  EXPECT_GE(body.Find("transport")->GetInt("connections"), 3);
  EXPECT_GE(body.Find("latency")->GetInt("count"), 3);
  EXPECT_GE(body.GetInt("body_reads"), 1);

  // HEAD: headers + Content-Length but no body.
  auto head_conn = TcpConnect("127.0.0.1", port(), 2000);
  ASSERT_TRUE(head_conn.ok()) << head_conn.status();
  TcpSocket head_socket = std::move(*head_conn);
  ASSERT_TRUE(head_socket.SetTimeouts(5000, 5000).ok());
  ASSERT_TRUE(head_socket
                  .WriteAll("HEAD /archives HTTP/1.1\r\n"
                            "Connection: close\r\n\r\n")
                  .ok());
  std::string head_raw;
  while (head_socket.Read(head_raw) == TcpSocket::ReadOutcome::kData) {
  }
  EXPECT_NE(head_raw.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(head_raw.find("Content-Length: "), std::string::npos);
  EXPECT_EQ(head_raw.find("\"archives\""), std::string::npos)
      << "HEAD must not carry a body";

  // Writes are refused.
  auto post = Fetch(port(), "/archives", {}, "POST");
  ASSERT_TRUE(post.ok());
  EXPECT_EQ(post->status, 405);
  EXPECT_EQ(post->headers.at("allow"), "GET, HEAD");

  auto root = Fetch(port(), "/");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root->status, 200);
  auto nowhere = Fetch(port(), "/nowhere");
  ASSERT_TRUE(nowhere.ok());
  EXPECT_EQ(nowhere->status, 404);
}

TEST_F(ServeTest, SlowClientGets408AndServerKeepsServing) {
  StartServer("slow", /*timeout_ms=*/300);
  auto slow_conn = TcpConnect("127.0.0.1", port(), 2000);
  ASSERT_TRUE(slow_conn.ok()) << slow_conn.status();
  TcpSocket slow = std::move(*slow_conn);
  ASSERT_TRUE(slow.SetTimeouts(5000, 5000).ok());
  // Half a request, then silence: the server must cut us off with a 408
  // instead of parking a worker forever.
  ASSERT_TRUE(slow.WriteAll("GET /archives HT").ok());
  auto response = ReadResponse(slow);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->status, 408);

  // The daemon is still healthy for the next client.
  auto healthy = Fetch(port(), "/archives");
  ASSERT_TRUE(healthy.ok());
  EXPECT_EQ(healthy->status, 200);

  auto stats = Fetch(port(), "/stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(MustParse(stats->body).Find("transport")->GetInt("timeouts"), 1);
}

TEST_F(ServeTest, FaultedRepositoryReadsAre500NotACrash) {
  StartServer("faulted");
  // Fail every archive body read as a device error would. The index scan
  // is untouched, so the daemon still knows the archive exists — the
  // decode itself is what breaks.
  ArchiveRepository::SetIoFaultHookForTest(
      [](const char* stage, const std::string&) {
        return std::string_view(stage) == "read"
                   ? Status::IoError("injected device error")
                   : Status::OK();
      });
  auto faulted = Fetch(port(), "/archives/g-bfs/subtree/Root/Superstep-3");
  ASSERT_TRUE(faulted.ok()) << faulted.status();
  EXPECT_EQ(faulted->status, 500);
  EXPECT_EQ(MustParse(faulted->body).Find("error")->GetString("code"),
            "io_error");

  // Heal the disk: the daemon recovers without a restart.
  ArchiveRepository::SetIoFaultHookForTest(nullptr);
  auto healed = Fetch(port(), "/archives/g-bfs/subtree/Root/Superstep-3");
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(healed->status, 200);

  auto stats = Fetch(port(), "/stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(MustParse(stats->body)
                .Find("requests")
                ->GetInt("server_errors"),
            1);
}

TEST_F(ServeTest, ConcurrentReadersAllSucceed) {
  StartServer("concurrent");
  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 20;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const std::string targets[] = {
          "/archives",
          "/archives/g-bfs/subtree/Root/Superstep-1",
          "/archives/g-pr/subtree/Root/Superstep-2",
          "/archives?platform=Giraph",
          "/stats",
      };
      for (int i = 0; i < kRequestsPerClient; ++i) {
        auto response = Fetch(port(), targets[(c + i) % 5]);
        if (!response.ok() || response->status != 200) ++failures;
      }
    });
  }
  for (auto& client : clients) client.join();
  EXPECT_EQ(failures.load(), 0);

  auto stats = Fetch(port(), "/stats");
  ASSERT_TRUE(stats.ok());
  Json body = MustParse(stats->body);
  EXPECT_GE(body.Find("requests")->GetInt("ok"),
            kClients * kRequestsPerClient);
  EXPECT_GE(body.Find("response_cache")->GetInt("hits"), 1)
      << "hot subtrees must be served from the shared cache";
}

TEST_F(ServeTest, GracefulDrainClosesIdleKeepAliveClients) {
  StartServer("drain");
  // A keep-alive client parked between requests...
  auto idle_conn = TcpConnect("127.0.0.1", port(), 2000);
  ASSERT_TRUE(idle_conn.ok()) << idle_conn.status();
  TcpSocket idle = std::move(*idle_conn);
  ASSERT_TRUE(idle.SetTimeouts(5000, 5000).ok());
  ASSERT_TRUE(idle.WriteAll("GET /archives HTTP/1.1\r\n\r\n").ok());
  auto first = ReadResponse(idle);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->status, 200);

  // ...must not wedge Stop(): the drain shuts the read side down, the
  // worker sees EOF, and Stop() returns.
  server_->Stop();
  EXPECT_FALSE(server_->running());

  // The listener is gone.
  auto after = TcpConnect("127.0.0.1", port(), 200);
  if (after.ok()) {
    // A TCP backlog race can accept the connection; it must close without
    // serving.
    std::string leftovers;
    ASSERT_TRUE(after->SetTimeouts(1000, 1000).ok());
    (void)after->WriteAll("GET /archives HTTP/1.1\r\n\r\n");
    EXPECT_NE(after->Read(leftovers), TcpSocket::ReadOutcome::kData);
  }
}

}  // namespace
}  // namespace granula::serve
