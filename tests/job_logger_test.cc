#include "granula/monitor/job_logger.h"

#include <fstream>

#include <gtest/gtest.h>

namespace granula::core {
namespace {

TEST(JobLoggerTest, RecordsStartEndInfo) {
  SimTime now = SimTime::Seconds(1);
  JobLogger logger([&now] { return now; });

  OpId job = logger.StartOperation(kNoOp, "Job", "job-0", "Root");
  now = SimTime::Seconds(2);
  OpId phase = logger.StartOperation(job, "Job", "job-0", "Phase", "Phase-1");
  logger.AddInfo(phase, "Bytes", Json(int64_t{1024}));
  now = SimTime::Seconds(3);
  logger.EndOperation(phase);
  logger.EndOperation(job);

  const auto& records = logger.records();
  ASSERT_EQ(records.size(), 5u);
  EXPECT_EQ(records[0].kind, LogRecord::Kind::kStartOp);
  EXPECT_EQ(records[0].op_id, job);
  EXPECT_EQ(records[0].parent_id, kNoOp);
  EXPECT_EQ(records[0].time, SimTime::Seconds(1));
  EXPECT_EQ(records[1].parent_id, job);
  EXPECT_EQ(records[1].mission_id, "Phase-1");
  EXPECT_EQ(records[2].kind, LogRecord::Kind::kInfo);
  EXPECT_EQ(records[2].info_name, "Bytes");
  EXPECT_EQ(records[2].info_value.AsInt(), 1024);
  EXPECT_EQ(records[3].kind, LogRecord::Kind::kEndOp);
  EXPECT_EQ(records[3].time, SimTime::Seconds(3));
}

TEST(JobLoggerTest, OpIdsAreUniqueAndNonZero) {
  SimTime now;
  JobLogger logger([&now] { return now; });
  OpId a = logger.StartOperation(kNoOp, "A", "", "M");
  OpId b = logger.StartOperation(a, "A", "", "M");
  OpId c = logger.StartOperation(a, "A", "", "M");
  EXPECT_NE(a, kNoOp);
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
}

TEST(JobLoggerTest, SequenceNumbersMonotonic) {
  SimTime now;
  JobLogger logger([&now] { return now; });
  OpId op = logger.StartOperation(kNoOp, "A", "", "M");
  logger.AddInfo(op, "x", Json(int64_t{1}));
  logger.EndOperation(op);
  const auto& records = logger.records();
  for (size_t i = 1; i < records.size(); ++i) {
    EXPECT_GT(records[i].seq, records[i - 1].seq);
  }
}

TEST(JobLoggerTest, TakeRecordsMovesOut) {
  SimTime now;
  JobLogger logger([&now] { return now; });
  logger.StartOperation(kNoOp, "A", "", "M");
  auto taken = logger.TakeRecords();
  EXPECT_EQ(taken.size(), 1u);
  EXPECT_TRUE(logger.records().empty());
}

TEST(JobLoggerTest, RecordJsonRoundtrip) {
  SimTime now = SimTime::Seconds(1.5);
  JobLogger logger([&now] { return now; });
  OpId op = logger.StartOperation(kNoOp, "Worker", "Worker-3", "Superstep",
                                  "Superstep-4");
  logger.AddInfo(op, "MessagesSent", Json(int64_t{12345}));
  now = SimTime::Seconds(2.5);
  logger.EndOperation(op);
  for (const LogRecord& r : logger.records()) {
    auto parsed = LogRecord::FromJson(r.ToJson());
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_EQ(parsed->kind, r.kind);
    EXPECT_EQ(parsed->seq, r.seq);
    EXPECT_EQ(parsed->time, r.time);
    EXPECT_EQ(parsed->op_id, r.op_id);
    EXPECT_EQ(parsed->parent_id, r.parent_id);
    EXPECT_EQ(parsed->actor_type, r.actor_type);
    EXPECT_EQ(parsed->actor_id, r.actor_id);
    EXPECT_EQ(parsed->mission_type, r.mission_type);
    EXPECT_EQ(parsed->mission_id, r.mission_id);
    EXPECT_EQ(parsed->info_name, r.info_name);
    EXPECT_EQ(parsed->info_value, r.info_value);
  }
  EXPECT_FALSE(LogRecord::FromJson(Json("not an object")).ok());
  Json bad_kind;
  bad_kind["kind"] = "telepathy";
  EXPECT_FALSE(LogRecord::FromJson(bad_kind).ok());
}

TEST(JobLoggerTest, LogFileRoundtrip) {
  SimTime now;
  JobLogger logger([&now] { return now; });
  OpId root = logger.StartOperation(kNoOp, "Job", "job-0", "Root");
  OpId step = logger.StartOperation(root, "Worker", "w-1", "Step", "Step-1");
  logger.AddInfo(step, "Items", Json(int64_t{7}));
  now = SimTime::Seconds(3);
  logger.EndOperation(step);
  logger.EndOperation(root);
  std::vector<LogRecord> records = logger.TakeRecords();

  std::string path = testing::TempDir() + "/job_logger_roundtrip.jsonl";
  ASSERT_TRUE(WriteLogRecords(path, records).ok());
  auto loaded = ReadLogRecords(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ((*loaded)[i].ToJson(), records[i].ToJson()) << "record " << i;
  }
  EXPECT_EQ(ReadLogRecords(path + ".missing").status().code(),
            StatusCode::kNotFound);
}

TEST(JobLoggerTest, ReadLogRejectsCorruptLineWithContext) {
  std::string path = testing::TempDir() + "/job_logger_corrupt.jsonl";
  {
    std::ofstream file(path);
    file << R"({"kind":"start","seq":0,"t":0,"op":1,"parent":0,)"
         << R"("actor_type":"A","mission_type":"M"})" << "\n";
    file << "{truncated\n";
  }
  auto loaded = ReadLogRecords(path);
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  // The error names the file and line of the bad record.
  EXPECT_NE(loaded.status().message().find(":2:"), std::string::npos);
}

}  // namespace
}  // namespace granula::core
