#include "granula/monitor/job_logger.h"

#include <gtest/gtest.h>

namespace granula::core {
namespace {

TEST(JobLoggerTest, RecordsStartEndInfo) {
  SimTime now = SimTime::Seconds(1);
  JobLogger logger([&now] { return now; });

  OpId job = logger.StartOperation(kNoOp, "Job", "job-0", "Root");
  now = SimTime::Seconds(2);
  OpId phase = logger.StartOperation(job, "Job", "job-0", "Phase", "Phase-1");
  logger.AddInfo(phase, "Bytes", Json(int64_t{1024}));
  now = SimTime::Seconds(3);
  logger.EndOperation(phase);
  logger.EndOperation(job);

  const auto& records = logger.records();
  ASSERT_EQ(records.size(), 5u);
  EXPECT_EQ(records[0].kind, LogRecord::Kind::kStartOp);
  EXPECT_EQ(records[0].op_id, job);
  EXPECT_EQ(records[0].parent_id, kNoOp);
  EXPECT_EQ(records[0].time, SimTime::Seconds(1));
  EXPECT_EQ(records[1].parent_id, job);
  EXPECT_EQ(records[1].mission_id, "Phase-1");
  EXPECT_EQ(records[2].kind, LogRecord::Kind::kInfo);
  EXPECT_EQ(records[2].info_name, "Bytes");
  EXPECT_EQ(records[2].info_value.AsInt(), 1024);
  EXPECT_EQ(records[3].kind, LogRecord::Kind::kEndOp);
  EXPECT_EQ(records[3].time, SimTime::Seconds(3));
}

TEST(JobLoggerTest, OpIdsAreUniqueAndNonZero) {
  SimTime now;
  JobLogger logger([&now] { return now; });
  OpId a = logger.StartOperation(kNoOp, "A", "", "M");
  OpId b = logger.StartOperation(a, "A", "", "M");
  OpId c = logger.StartOperation(a, "A", "", "M");
  EXPECT_NE(a, kNoOp);
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
}

TEST(JobLoggerTest, SequenceNumbersMonotonic) {
  SimTime now;
  JobLogger logger([&now] { return now; });
  OpId op = logger.StartOperation(kNoOp, "A", "", "M");
  logger.AddInfo(op, "x", Json(int64_t{1}));
  logger.EndOperation(op);
  const auto& records = logger.records();
  for (size_t i = 1; i < records.size(); ++i) {
    EXPECT_GT(records[i].seq, records[i - 1].seq);
  }
}

TEST(JobLoggerTest, TakeRecordsMovesOut) {
  SimTime now;
  JobLogger logger([&now] { return now; });
  logger.StartOperation(kNoOp, "A", "", "M");
  auto taken = logger.TakeRecords();
  EXPECT_EQ(taken.size(), 1u);
  EXPECT_TRUE(logger.records().empty());
}

}  // namespace
}  // namespace granula::core
