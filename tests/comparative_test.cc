// Multi-archive comparison over a sweep repository: per-workload phase
// tables, scaling curves, and the sweep-level regression gate.

#include "granula/analysis/comparative.h"

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "granula/archive/archiver.h"
#include "granula/model/performance_model.h"
#include "granula/monitor/job_logger.h"
#include "granula/visual/comparative_view.h"

namespace granula::core {
namespace {

// An archive whose root has the given phases back to back; mission ids
// repeat when the same name appears twice (e.g. two FailedAttempts).
PerformanceArchive MakeArchive(
    const std::vector<std::pair<std::string, double>>& phases,
    std::map<std::string, std::string> metadata = {}) {
  SimTime now;
  JobLogger logger([&now] { return now; });
  OpId root = logger.StartOperation(kNoOp, "Job", "job", "Root", "Root");
  double t = 0;
  for (const auto& [name, seconds] : phases) {
    OpId op = logger.StartOperation(root, "Job", "job", name, name);
    t += seconds;
    now = SimTime::Seconds(t);
    logger.EndOperation(op);
  }
  logger.EndOperation(root);

  PerformanceModel model("m");
  (void)model.AddRoot("Job", "Root");
  std::set<std::string> seen;
  for (const auto& [name, unused] : phases) {
    if (seen.insert(name).second) {
      (void)model.AddOperation("Job", name, "Job", "Root");
    }
  }
  auto archive =
      Archiver().Build(model, logger.records(), {}, std::move(metadata));
  EXPECT_TRUE(archive.ok()) << archive.status();
  return std::move(*archive);
}

// SweepEntry is move-only (the archive owns its operation tree), so
// tests build entry vectors through this variadic mover instead of
// initializer lists.
template <typename... E>
std::vector<SweepEntry> Entries(E... entry) {
  std::vector<SweepEntry> out;
  (out.push_back(std::move(entry)), ...);
  return out;
}

SweepEntry MakeEntry(const std::string& name, const std::string& platform,
                     const std::string& algorithm, const std::string& graph,
                     uint64_t vertices,
                     const std::vector<std::pair<std::string, double>>& phases,
                     const std::string& fault = "") {
  SweepEntry entry;
  entry.name = name;
  entry.platform = platform;
  entry.algorithm = algorithm;
  entry.graph = graph;
  entry.fault = fault;
  entry.nodes = 4;
  entry.graph_vertices = vertices;
  entry.archive = MakeArchive(phases);
  return entry;
}

TEST(ComparativeReportTest, GroupsPlatformsIntoOneTablePerWorkload) {
  std::vector<SweepEntry> entries = Entries(
      MakeEntry("b-bfs", "powergraph", "BFS", "g1", 100,
                {{"Load", 2}, {"Process", 8}}),
      MakeEntry("a-bfs", "giraph", "BFS", "g1", 100,
                {{"Load", 1}, {"Process", 4}}),
      MakeEntry("a-wcc", "giraph", "WCC", "g1", 100,
                {{"Load", 1}, {"Process", 6}}));
  ComparativeReport report = BuildComparativeReport(entries);
  ASSERT_EQ(report.workloads.size(), 2u);  // (BFS, g1) and (WCC, g1)
  const auto& bfs = report.workloads[0];
  EXPECT_EQ(bfs.algorithm, "BFS");
  EXPECT_EQ(bfs.phases, (std::vector<std::string>{"Load", "Process"}));
  ASSERT_EQ(bfs.rows.size(), 2u);
  // Rows sorted by platform, independent of entry order.
  EXPECT_EQ(bfs.rows[0].platform, "giraph");
  EXPECT_EQ(bfs.rows[1].platform, "powergraph");
  EXPECT_DOUBLE_EQ(bfs.rows[0].total_seconds, 5);
  EXPECT_EQ(bfs.rows[1].phase_seconds,
            (std::vector<double>{2, 8}));
}

TEST(ComparativeReportTest, PhaseUnionPadsRowsMissingAPhase) {
  std::vector<SweepEntry> entries = Entries(
      MakeEntry("a", "giraph", "BFS", "g1", 100,
                {{"Load", 1}, {"Process", 4}}),
      MakeEntry("b", "hadoop", "BFS", "g1", 100,
                {{"Load", 2}, {"Shuffle", 3}, {"Process", 9}}));
  ComparativeReport report = BuildComparativeReport(entries);
  ASSERT_EQ(report.workloads.size(), 1u);
  const auto& table = report.workloads[0];
  EXPECT_EQ(table.phases,
            (std::vector<std::string>{"Load", "Process", "Shuffle"}));
  // giraph was first and has no Shuffle: padded with 0.
  EXPECT_EQ(table.rows[0].phase_seconds, (std::vector<double>{1, 4, 0}));
  EXPECT_EQ(table.rows[1].phase_seconds, (std::vector<double>{2, 9, 3}));
}

TEST(ComparativeReportTest, DuplicatePhasesAreSummedIntoOneColumn) {
  std::vector<SweepEntry> entries = Entries(
      MakeEntry("a", "powergraph", "BFS", "g1", 100,
                {{"FailedAttempt", 2}, {"FailedAttempt", 3}, {"Run", 5}}));
  ComparativeReport report = BuildComparativeReport(entries);
  ASSERT_EQ(report.workloads.size(), 1u);
  EXPECT_EQ(report.workloads[0].phases,
            (std::vector<std::string>{"FailedAttempt", "Run"}));
  EXPECT_EQ(report.workloads[0].rows[0].phase_seconds,
            (std::vector<double>{5, 5}));
}

TEST(ComparativeReportTest, ScalingCurvesNeedTwoGraphsAndSortByVertices) {
  std::vector<SweepEntry> entries = Entries(
      MakeEntry("a-large", "giraph", "BFS", "large", 1000, {{"Process", 9}}),
      MakeEntry("a-small", "giraph", "BFS", "small", 100, {{"Process", 2}}),
      MakeEntry("b-small", "pgxd", "BFS", "small", 100, {{"Process", 1}}));
  ComparativeReport report = BuildComparativeReport(entries);
  // pgxd ran only one graph: no curve for it.
  ASSERT_EQ(report.scaling.size(), 1u);
  const auto& curve = report.scaling[0];
  EXPECT_EQ(curve.platform, "giraph");
  ASSERT_EQ(curve.points.size(), 2u);
  EXPECT_EQ(curve.points[0].graph, "small");
  EXPECT_EQ(curve.points[1].graph, "large");
  EXPECT_DOUBLE_EQ(curve.points[1].seconds, 9);
}

TEST(ComparativeReportTest, RendererShowsTablesAndIncompleteMarker) {
  std::vector<SweepEntry> entries = Entries(
      MakeEntry("a", "giraph", "BFS", "g1", 100,
                {{"Load", 1}, {"Process", 4}}));
  entries[0].archive.status = ArchiveStatus::kIncomplete;
  std::string text = RenderComparativeReport(BuildComparativeReport(entries));
  EXPECT_NE(text.find("BFS on g1, 4 nodes"), std::string::npos);
  EXPECT_NE(text.find("Process"), std::string::npos);
  EXPECT_NE(text.find("[INCOMPLETE]"), std::string::npos);
}

// -------------------------------------------------------------- gate ----

TEST(CompareSweepsTest, FlagsOnlyJobsPastTolerance) {
  std::vector<SweepEntry> baseline = Entries(
      MakeEntry("job-a", "giraph", "BFS", "g1", 100, {{"Process", 10}}),
      MakeEntry("job-b", "pgxd", "BFS", "g1", 100, {{"Process", 10}}));
  std::vector<SweepEntry> candidate = Entries(
      MakeEntry("job-a", "giraph", "BFS", "g1", 100, {{"Process", 10.5}}),
      MakeEntry("job-b", "pgxd", "BFS", "g1", 100, {{"Process", 13}}));
  RegressionOptions options;
  options.tolerance = 0.10;
  SweepRegressionSummary summary =
      CompareSweeps(baseline, candidate, options);
  ASSERT_EQ(summary.jobs.size(), 2u);
  EXPECT_FALSE(summary.jobs[0].report.HasRegressions());  // +5% < tolerance
  EXPECT_TRUE(summary.jobs[1].report.HasRegressions());   // +30%
  EXPECT_TRUE(summary.HasRegressions());
  EXPECT_GE(summary.TotalRegressions(), 1u);

  // A looser gate passes both.
  options.tolerance = 0.50;
  EXPECT_FALSE(CompareSweeps(baseline, candidate, options).HasRegressions());
}

TEST(CompareSweepsTest, ReportsMissingAndAddedJobsByName) {
  std::vector<SweepEntry> baseline = Entries(
      MakeEntry("only-baseline", "giraph", "BFS", "g1", 100,
                {{"Process", 10}}),
      MakeEntry("shared", "pgxd", "BFS", "g1", 100, {{"Process", 10}}));
  std::vector<SweepEntry> candidate = Entries(
      MakeEntry("shared", "pgxd", "BFS", "g1", 100, {{"Process", 10}}),
      MakeEntry("only-candidate", "hadoop", "BFS", "g1", 100,
                {{"Process", 10}}));
  SweepRegressionSummary summary =
      CompareSweeps(baseline, candidate, RegressionOptions{});
  EXPECT_EQ(summary.missing, std::vector<std::string>{"only-baseline"});
  EXPECT_EQ(summary.added, std::vector<std::string>{"only-candidate"});
  ASSERT_EQ(summary.jobs.size(), 1u);
  EXPECT_EQ(summary.jobs[0].name, "shared");
  EXPECT_FALSE(summary.HasRegressions());
}

TEST(CompareSweepsTest, RendererShowsVerdictLine) {
  std::vector<SweepEntry> baseline = Entries(
      MakeEntry("job", "giraph", "BFS", "g1", 100, {{"Process", 10}}));
  std::vector<SweepEntry> slower = Entries(
      MakeEntry("job", "giraph", "BFS", "g1", 100, {{"Process", 20}}));
  SweepRegressionSummary fail =
      CompareSweeps(baseline, slower, RegressionOptions{});
  std::string fail_text = RenderSweepRegressionSummary(fail);
  EXPECT_NE(fail_text.find("[FAIL]"), std::string::npos);
  EXPECT_NE(fail_text.find("REGRESSION"), std::string::npos);

  SweepRegressionSummary ok =
      CompareSweeps(baseline, baseline, RegressionOptions{});
  EXPECT_NE(RenderSweepRegressionSummary(ok).find("[OK]"),
            std::string::npos);
}

}  // namespace
}  // namespace granula::core
