#include "granula/archive/archiver.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/random.h"
#include "granula/models/models.h"

namespace granula::core {
namespace {

// A miniature platform run, logged at two levels of detail:
// Root(0-10s) -> PhaseA(0-6s) -> Step x2 (workers), PhaseB(6-10s).
std::vector<LogRecord> SampleLog() {
  SimTime now;
  JobLogger logger([&now] { return now; });
  OpId root = logger.StartOperation(kNoOp, "Job", "job-0", "Root");
  OpId phase_a =
      logger.StartOperation(root, "Job", "job-0", "PhaseA", "PhaseA");
  OpId step1 =
      logger.StartOperation(phase_a, "Worker", "Worker-1", "Step", "Step-1");
  logger.AddInfo(step1, "Items", Json(int64_t{100}));
  now = SimTime::Seconds(4);
  logger.EndOperation(step1);
  OpId step2 =
      logger.StartOperation(phase_a, "Worker", "Worker-2", "Step", "Step-2");
  now = SimTime::Seconds(6);
  logger.EndOperation(step2);
  logger.EndOperation(phase_a);
  OpId phase_b =
      logger.StartOperation(root, "Job", "job-0", "PhaseB", "PhaseB");
  now = SimTime::Seconds(10);
  logger.EndOperation(phase_b);
  logger.EndOperation(root);
  return logger.TakeRecords();
}

PerformanceModel SampleModel() {
  PerformanceModel model("sample");
  (void)model.AddRoot("Job", "Root");
  (void)model.AddOperation("Job", "PhaseA", "Job", "Root");
  (void)model.AddOperation("Job", "PhaseB", "Job", "Root");
  (void)model.AddOperation("Worker", "Step", "Job", "PhaseA");
  return model;
}

TEST(ArchiverTest, BuildsTreeWithTimesAndInfos) {
  auto archive = Archiver().Build(SampleModel(), SampleLog(), {},
                                  {{"platform", "test"}});
  ASSERT_TRUE(archive.ok()) << archive.status();
  ASSERT_NE(archive->root, nullptr);
  EXPECT_EQ(archive->root->mission_type, "Root");
  EXPECT_EQ(archive->root->Duration(), SimTime::Seconds(10));
  ASSERT_EQ(archive->root->children.size(), 2u);
  const ArchivedOperation& phase_a = *archive->root->children[0];
  EXPECT_EQ(phase_a.mission_type, "PhaseA");
  ASSERT_EQ(phase_a.children.size(), 2u);
  EXPECT_EQ(phase_a.children[0]->actor_id, "Worker-1");
  EXPECT_DOUBLE_EQ(phase_a.children[0]->InfoNumber("Items"), 100.0);
  EXPECT_EQ(archive->job_metadata.at("platform"), "test");
  EXPECT_EQ(archive->OperationCount(), 5u);
}

TEST(ArchiverTest, DurationRuleDerived) {
  auto archive = Archiver().Build(SampleModel(), SampleLog(), {}, {});
  ASSERT_TRUE(archive.ok());
  const ArchivedOperation* step =
      archive->FindByPath("Root/PhaseA/Step-1");
  ASSERT_NE(step, nullptr);
  EXPECT_DOUBLE_EQ(step->InfoNumber("Duration"),
                   SimTime::Seconds(4).nanos());
  EXPECT_EQ(step->FindInfo("Duration")->source, "EndTime - StartTime");
}

TEST(ArchiverTest, OrderIndependent) {
  std::vector<LogRecord> records = SampleLog();
  Rng rng(5);
  rng.Shuffle(records);
  auto shuffled = Archiver().Build(SampleModel(), records, {}, {});
  auto ordered = Archiver().Build(SampleModel(), SampleLog(), {}, {});
  ASSERT_TRUE(shuffled.ok()) << shuffled.status();
  ASSERT_TRUE(ordered.ok());
  EXPECT_EQ(shuffled->ToJsonString(), ordered->ToJsonString());
}

TEST(ArchiverTest, UnmodeledOperationsSplicedOut) {
  // Model without the Worker@Step level: steps vanish, but PhaseA keeps
  // its own timing.
  PerformanceModel coarse("coarse");
  (void)coarse.AddRoot("Job", "Root");
  (void)coarse.AddOperation("Job", "PhaseA", "Job", "Root");
  (void)coarse.AddOperation("Job", "PhaseB", "Job", "Root");
  auto archive = Archiver().Build(coarse, SampleLog(), {}, {});
  ASSERT_TRUE(archive.ok());
  EXPECT_EQ(archive->OperationCount(), 3u);
  const ArchivedOperation* phase_a = archive->FindByPath("Root/PhaseA");
  ASSERT_NE(phase_a, nullptr);
  EXPECT_TRUE(phase_a->children.empty());
  EXPECT_EQ(phase_a->Duration(), SimTime::Seconds(6));
}

TEST(ArchiverTest, UnmodeledMiddleHoistsGrandchildren) {
  // Model with Root and Step but not PhaseA/PhaseB: steps re-attach to Root.
  PerformanceModel holey("holey");
  (void)holey.AddRoot("Job", "Root");
  (void)holey.AddOperation("Worker", "Step", "Job", "Root");
  auto archive = Archiver().Build(holey, SampleLog(), {}, {});
  ASSERT_TRUE(archive.ok());
  ASSERT_EQ(archive->root->children.size(), 2u);
  EXPECT_EQ(archive->root->children[0]->mission_type, "Step");
}

TEST(ArchiverTest, MaxLevelOptionTrimsArchive) {
  Archiver::Options options;
  options.max_level = 2;
  auto archive =
      Archiver(options).Build(SampleModel(), SampleLog(), {}, {});
  ASSERT_TRUE(archive.ok());
  EXPECT_EQ(archive->OperationCount(), 3u);  // root + 2 phases
}

TEST(ArchiverTest, StrictModeRejectsUnmodeledOps) {
  PerformanceModel coarse("coarse");
  (void)coarse.AddRoot("Job", "Root");
  (void)coarse.AddOperation("Job", "PhaseA", "Job", "Root");
  (void)coarse.AddOperation("Job", "PhaseB", "Job", "Root");
  Archiver::Options options;
  options.strict = true;
  auto archive = Archiver(options).Build(coarse, SampleLog(), {}, {});
  EXPECT_EQ(archive.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ArchiverTest, MissingEndRepairedFromSubtree) {
  std::vector<LogRecord> records = SampleLog();
  // Drop PhaseA's EndOp record.
  records.erase(std::remove_if(records.begin(), records.end(),
                               [](const LogRecord& r) {
                                 return r.kind == LogRecord::Kind::kEndOp &&
                                        r.op_id == 2;
                               }),
                records.end());
  auto archive = Archiver().Build(SampleModel(), records, {}, {});
  ASSERT_TRUE(archive.ok()) << archive.status();
  const ArchivedOperation* phase_a = archive->FindByPath("Root/PhaseA");
  ASSERT_NE(phase_a, nullptr);
  // Repaired to the max end of its steps (6s).
  EXPECT_EQ(phase_a->EndTime(), SimTime::Seconds(6));
  EXPECT_NE(phase_a->FindInfo("EndTime")->source.find("repaired"),
            std::string::npos);
}

TEST(ArchiverTest, NoRootFails) {
  std::vector<LogRecord> records;
  auto archive = Archiver().Build(SampleModel(), records, {}, {});
  EXPECT_EQ(archive.status().code(), StatusCode::kCorruption);
}

TEST(ArchiverTest, TwoRootsFail) {
  SimTime now;
  JobLogger logger([&now] { return now; });
  logger.StartOperation(kNoOp, "Job", "", "Root");
  logger.StartOperation(kNoOp, "Job", "", "Root");
  auto archive = Archiver().Build(SampleModel(), logger.records(), {}, {});
  EXPECT_EQ(archive.status().code(), StatusCode::kCorruption);
}

TEST(ArchiverTest, DuplicateStartFails) {
  std::vector<LogRecord> records = SampleLog();
  records.push_back(records[0]);
  auto archive = Archiver().Build(SampleModel(), records, {}, {});
  EXPECT_EQ(archive.status().code(), StatusCode::kCorruption);
}

TEST(ArchiverTest, OrphanInfoRejectedStrictQuarantinedInRepair) {
  std::vector<LogRecord> records = SampleLog();
  LogRecord orphan;
  orphan.kind = LogRecord::Kind::kInfo;
  orphan.seq = 999;
  orphan.op_id = 999;
  orphan.info_name = "ghost";
  orphan.info_value = Json(int64_t{1});
  records.push_back(orphan);
  auto strict = Archiver().Build(SampleModel(), records, {}, {});
  EXPECT_EQ(strict.status().code(), StatusCode::kCorruption);

  Archiver::Options options;
  options.tolerance = Archiver::Tolerance::kRepair;
  auto repaired = Archiver(options).Build(SampleModel(), records, {}, {});
  ASSERT_TRUE(repaired.ok()) << repaired.status();
  EXPECT_EQ(repaired->lint.CountOf(LintDefect::kOrphanInfo), 1u);
  EXPECT_EQ(repaired->OperationCount(), 5u);
}

TEST(ArchiverTest, RootNotInModelFails) {
  PerformanceModel other("other");
  (void)other.AddRoot("Job", "SomethingElse");
  auto archive = Archiver().Build(other, SampleLog(), {}, {});
  EXPECT_FALSE(archive.ok());
}

TEST(ArchiverTest, ChildrenSortedByStartTime) {
  // Emit children out of time order (possible with distributed workers).
  SimTime now;
  JobLogger logger([&now] { return now; });
  OpId root = logger.StartOperation(kNoOp, "Job", "", "Root");
  now = SimTime::Seconds(5);
  OpId late =
      logger.StartOperation(root, "Job", "", "PhaseB", "PhaseB");
  logger.EndOperation(late);
  now = SimTime::Seconds(1);
  OpId early =
      logger.StartOperation(root, "Job", "", "PhaseA", "PhaseA");
  logger.EndOperation(early);
  now = SimTime::Seconds(6);
  logger.EndOperation(root);
  auto archive = Archiver().Build(SampleModel(), logger.records(), {}, {});
  ASSERT_TRUE(archive.ok());
  ASSERT_EQ(archive->root->children.size(), 2u);
  EXPECT_EQ(archive->root->children[0]->mission_type, "PhaseA");
  EXPECT_EQ(archive->root->children[1]->mission_type, "PhaseB");
}

TEST(ArchiverTest, EnvironmentAndMetadataCarried) {
  EnvironmentRecord env;
  env.node = 3;
  env.hostname = "node342";
  env.time_seconds = 1.0;
  env.cpu_seconds_per_second = 7.5;
  auto archive = Archiver().Build(SampleModel(), SampleLog(), {env},
                                  {{"algorithm", "BFS"}});
  ASSERT_TRUE(archive.ok());
  ASSERT_EQ(archive->environment.size(), 1u);
  EXPECT_EQ(archive->environment[0].hostname, "node342");
  EXPECT_EQ(archive->job_metadata.at("algorithm"), "BFS");
}

}  // namespace
}  // namespace granula::core
