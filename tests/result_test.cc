#include "common/result.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace granula {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).value();
  EXPECT_EQ(*p, 7);
}

TEST(ResultTest, ValueOrFallback) {
  Result<std::string> ok = std::string("x");
  Result<std::string> bad = Status::Internal("e");
  EXPECT_EQ(ok.value_or("y"), "x");
  EXPECT_EQ(bad.value_or("y"), "y");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> DoubleOf(int x) {
  GRANULA_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> good = DoubleOf(21);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);

  Result<int> bad = DoubleOf(-1);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, CopyableWhenValueIsCopyable) {
  Result<std::string> a = std::string("abc");
  Result<std::string> b = a;
  EXPECT_EQ(b.value(), "abc");
  EXPECT_EQ(a.value(), "abc");
}

}  // namespace
}  // namespace granula
