#include "cluster/provisioning.h"

#include <gtest/gtest.h>

namespace granula::cluster {
namespace {

ClusterConfig TestConfig() {
  ClusterConfig config;
  config.num_nodes = 4;
  config.cores_per_node = 4;
  config.net_latency = SimTime();
  return config;
}

TEST(YarnTest, ContainerAllocationTakesHeartbeatsPlusLaunch) {
  sim::Simulator sim;
  Cluster cluster(&sim, TestConfig());
  YarnManager::Options opts;
  opts.rm_heartbeat = SimTime::Seconds(1);
  opts.container_launch = SimTime::Seconds(2);
  YarnManager yarn(&cluster, opts);

  std::vector<YarnManager::Container> containers;
  sim.Spawn([](YarnManager& y, std::vector<YarnManager::Container>& out)
                -> sim::Task<> {
    co_await y.AllocateContainers(0, 3, &out);
  }(yarn, containers));
  sim.Run();
  ASSERT_EQ(containers.size(), 3u);
  // 3 serialized heartbeats; last container starts launching at t=3 and
  // takes 2s (launches overlap but are staggered): done at 5s.
  EXPECT_DOUBLE_EQ(sim.Now().seconds(), 5.0);
  // Containers land on distinct nodes after the AM node.
  EXPECT_EQ(containers[0].node, 1u);
  EXPECT_EQ(containers[1].node, 2u);
  EXPECT_EQ(containers[2].node, 3u);
}

TEST(YarnTest, AllocationIsSlowerThanMpiLaunch) {
  sim::Simulator sim;
  Cluster cluster(&sim, TestConfig());
  YarnManager yarn(&cluster, YarnManager::Options{});
  MpiLauncher mpi(&cluster, MpiLauncher::Options{});

  std::vector<YarnManager::Container> containers;
  sim.Spawn([](YarnManager& y,
               std::vector<YarnManager::Container>& out) -> sim::Task<> {
    co_await y.LaunchApplicationMaster(0);
    co_await y.AllocateContainers(0, 4, &out);
  }(yarn, containers));
  sim.Run();
  double yarn_time = sim.Now().seconds();

  sim::Simulator sim2;
  Cluster cluster2(&sim2, TestConfig());
  MpiLauncher mpi2(&cluster2, MpiLauncher::Options{});
  sim2.Spawn([](MpiLauncher& m) -> sim::Task<> {
    co_await m.LaunchRanks(4);
  }(mpi2));
  sim2.Run();
  double mpi_time = sim2.Now().seconds();

  // The paper's Table 1 contrast: Yarn provisioning is several times
  // slower than mpirun (the full platform startups differ even more once
  // per-worker initialization is added on top).
  EXPECT_GT(yarn_time, 3.0 * mpi_time);
}

TEST(MpiTest, RanksSpawnInParallel) {
  sim::Simulator sim;
  Cluster cluster(&sim, TestConfig());
  MpiLauncher::Options opts;
  opts.ssh_spawn = SimTime::Seconds(1);
  opts.mpi_init = SimTime::Seconds(1);
  MpiLauncher mpi(&cluster, opts);
  sim.Spawn([](MpiLauncher& m) -> sim::Task<> {
    co_await m.LaunchRanks(4);
  }(mpi));
  sim.Run();
  // Parallel spawn (1s + cpu 0.3s) then init: ~2.3s, far less than 4x.
  EXPECT_LT(sim.Now().seconds(), 2.5);
  EXPECT_GE(sim.Now().seconds(), 2.0);
}

TEST(ZooKeeperTest, OpsCostLatencyAndCountUp) {
  sim::Simulator sim;
  Cluster cluster(&sim, TestConfig());
  ZooKeeper::Options opts;
  opts.op_latency = SimTime::Millis(100);
  ZooKeeper zk(&cluster, 0, opts);
  sim.Spawn([](ZooKeeper& z) -> sim::Task<> {
    co_await z.Op(1);
    co_await z.Op(2);
  }(zk));
  sim.Run();
  EXPECT_EQ(zk.operations(), 2u);
  EXPECT_GE(sim.Now().seconds(), 0.2);
}

}  // namespace
}  // namespace granula::cluster
