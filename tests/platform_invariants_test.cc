// Cross-platform structural invariants, parameterized over all five
// engines: the domain phases must appear exactly once each, in order,
// tiling the job without overlap; environment sampling must span the job;
// archives must round-trip. These are the guarantees the shared domain
// model (and therefore every cross-platform comparison) rests on.

#include <gtest/gtest.h>

#include "granula/archive/archiver.h"
#include "granula/models/models.h"
#include "graph/generators.h"
#include "platforms/giraph.h"
#include "platforms/graphmat.h"
#include "platforms/hadoop.h"
#include "platforms/pgxd.h"
#include "platforms/powergraph.h"

namespace granula::platform {
namespace {

enum class Engine { kGiraph, kPowerGraph, kHadoop, kPgxd, kGraphMat };

constexpr Engine kEngines[] = {Engine::kGiraph, Engine::kPowerGraph,
                               Engine::kHadoop, Engine::kPgxd,
                               Engine::kGraphMat};

Result<JobResult> RunEngine(Engine engine, const graph::Graph& g,
                            const algo::AlgorithmSpec& spec) {
  cluster::ClusterConfig cc;
  JobConfig job;
  switch (engine) {
    case Engine::kGiraph:
      return GiraphPlatform().Run(g, spec, cc, job);
    case Engine::kPowerGraph:
      return PowerGraphPlatform().Run(g, spec, cc, job);
    case Engine::kHadoop:
      return HadoopPlatform().Run(g, spec, cc, job);
    case Engine::kPgxd:
      return PgxdPlatform().Run(g, spec, cc, job);
    case Engine::kGraphMat:
      return GraphMatPlatform().Run(g, spec, cc, job);
  }
  return Status::InvalidArgument("unknown engine");
}

class PlatformInvariants : public ::testing::TestWithParam<int> {};

TEST_P(PlatformInvariants, DomainPhasesTileTheJob) {
  graph::DatagenConfig config;
  config.num_vertices = 3000;
  config.avg_degree = 8.0;
  config.seed = 42;
  auto g = graph::GenerateDatagen(config);
  ASSERT_TRUE(g.ok());
  algo::AlgorithmSpec spec;
  spec.id = algo::AlgorithmId::kBfs;
  spec.source = 1;

  auto result = RunEngine(kEngines[GetParam()], *g, spec);
  ASSERT_TRUE(result.ok()) << result.status();
  auto archive = core::Archiver().Build(
      core::MakeGraphProcessingDomainModel(), result->records,
      std::move(result->environment), {});
  ASSERT_TRUE(archive.ok()) << archive.status();

  const core::ArchivedOperation& root = *archive->root;
  ASSERT_EQ(root.children.size(), 5u);
  const char* expected[] = {core::ops::kStartup, core::ops::kLoadGraph,
                            core::ops::kProcessGraph,
                            core::ops::kOffloadGraph, core::ops::kCleanup};
  SimTime cursor = root.StartTime();
  for (size_t i = 0; i < 5; ++i) {
    const core::ArchivedOperation& phase = *root.children[i];
    EXPECT_EQ(phase.mission_type, expected[i]);
    // Contiguity: each phase starts no earlier than the previous ended,
    // and the whole sequence stays inside the job.
    EXPECT_GE(phase.StartTime(), cursor);
    EXPECT_GE(phase.Duration().nanos(), 0);
    cursor = phase.EndTime();
  }
  EXPECT_LE(cursor, root.EndTime());

  // Phases cover (nearly) the whole job: gaps under 5%.
  double phase_sum = 0;
  for (const auto& child : root.children) {
    phase_sum += child->Duration().seconds();
  }
  EXPECT_GE(phase_sum, 0.95 * root.Duration().seconds());

  // Ts/Td/Tp metrics derived and consistent.
  double metric_sum = (root.InfoNumber("SetupTime") +
                       root.InfoNumber("IoTime") +
                       root.InfoNumber("ProcessingTime")) *
                      1e-9;
  EXPECT_NEAR(metric_sum, phase_sum, 1e-6);
}

TEST_P(PlatformInvariants, EnvironmentLogSpansTheJob) {
  auto g = graph::GenerateUniform(2000, 8000, 5);
  ASSERT_TRUE(g.ok());
  algo::AlgorithmSpec spec;
  spec.id = algo::AlgorithmId::kWcc;
  auto result = RunEngine(kEngines[GetParam()], *g, spec);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_FALSE(result->environment.empty());
  // Samples from all 8 nodes, covering up to the job end.
  std::set<uint32_t> nodes;
  double last = 0;
  for (const core::EnvironmentRecord& r : result->environment) {
    nodes.insert(r.node);
    last = std::max(last, r.time_seconds);
  }
  EXPECT_EQ(nodes.size(), 8u);
  EXPECT_NEAR(last, result->total_seconds, 1.5);
}

TEST_P(PlatformInvariants, ArchiveJsonRoundtrips) {
  auto g = graph::GenerateUniform(1000, 4000, 9);
  ASSERT_TRUE(g.ok());
  algo::AlgorithmSpec spec;
  spec.id = algo::AlgorithmId::kBfs;
  spec.source = 0;
  auto result = RunEngine(kEngines[GetParam()], *g, spec);
  ASSERT_TRUE(result.ok()) << result.status();
  auto archive = core::Archiver().Build(
      core::MakeGraphProcessingDomainModel(), result->records, {}, {});
  ASSERT_TRUE(archive.ok());
  std::string json = archive->ToJsonString();
  auto restored = core::PerformanceArchive::FromJsonString(json);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->ToJsonString(), json);
}

std::string EngineName(const ::testing::TestParamInfo<int>& info) {
  static const char* kNames[] = {"Giraph", "PowerGraph", "Hadoop", "Pgxd",
                                 "GraphMat"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllEngines, PlatformInvariants,
                         ::testing::Range(0, 5), EngineName);

}  // namespace
}  // namespace granula::platform
