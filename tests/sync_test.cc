#include "sim/sync.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace granula::sim {
namespace {

Task<> WaitForEvent(Event& ev, std::vector<int>& log, int id) {
  co_await ev.Wait();
  log.push_back(id);
}

TEST(EventTest, TriggerWakesAllWaiters) {
  Simulator sim;
  Event ev(&sim);
  std::vector<int> log;
  for (int i = 0; i < 3; ++i) sim.Spawn(WaitForEvent(ev, log, i));
  sim.Spawn([](Simulator& s, Event& e) -> Task<> {
    co_await s.Delay(SimTime::Seconds(1));
    e.Trigger();
  }(sim, ev));
  sim.Run();
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(ev.triggered());
}

TEST(EventTest, WaitAfterTriggerIsImmediate) {
  Simulator sim;
  Event ev(&sim);
  ev.Trigger();
  std::vector<int> log;
  sim.Spawn(WaitForEvent(ev, log, 7));
  sim.Run();
  EXPECT_EQ(log, (std::vector<int>{7}));
  EXPECT_EQ(sim.Now(), SimTime());
}

TEST(EventTest, DoubleTriggerIsIdempotent) {
  Simulator sim;
  Event ev(&sim);
  ev.Trigger();
  ev.Trigger();
  EXPECT_TRUE(ev.triggered());
}

Task<> BarrierWorker(Simulator& sim, Barrier& barrier, SimTime work,
                     std::vector<double>& release_times) {
  co_await sim.Delay(work);
  co_await barrier.Arrive();
  release_times.push_back(sim.Now().seconds());
}

TEST(BarrierTest, ReleasesAllAtLastArrival) {
  Simulator sim;
  Barrier barrier(&sim, 3);
  std::vector<double> releases;
  sim.Spawn(BarrierWorker(sim, barrier, SimTime::Seconds(1), releases));
  sim.Spawn(BarrierWorker(sim, barrier, SimTime::Seconds(5), releases));
  sim.Spawn(BarrierWorker(sim, barrier, SimTime::Seconds(3), releases));
  sim.Run();
  ASSERT_EQ(releases.size(), 3u);
  for (double t : releases) EXPECT_DOUBLE_EQ(t, 5.0);
  EXPECT_EQ(barrier.generation(), 1u);
}

Task<> IterativeWorker(Simulator& sim, Barrier& barrier, int rounds,
                       SimTime step, std::vector<double>& marks) {
  for (int r = 0; r < rounds; ++r) {
    co_await sim.Delay(step);
    co_await barrier.Arrive();
  }
  marks.push_back(sim.Now().seconds());
}

TEST(BarrierTest, ReusableAcrossGenerations) {
  Simulator sim;
  Barrier barrier(&sim, 2);
  std::vector<double> marks;
  sim.Spawn(IterativeWorker(sim, barrier, 3, SimTime::Seconds(1), marks));
  sim.Spawn(IterativeWorker(sim, barrier, 3, SimTime::Seconds(2), marks));
  sim.Run();
  // Slow worker paces both: rounds end at 2, 4, 6.
  ASSERT_EQ(marks.size(), 2u);
  EXPECT_DOUBLE_EQ(marks[0], 6.0);
  EXPECT_DOUBLE_EQ(marks[1], 6.0);
  EXPECT_EQ(barrier.generation(), 3u);
}

Task<> UseSemaphore(Simulator& sim, Semaphore& sem, SimTime hold,
                    std::vector<double>& start_times) {
  co_await sem.Acquire();
  start_times.push_back(sim.Now().seconds());
  co_await sim.Delay(hold);
  sem.Release();
}

TEST(SemaphoreTest, LimitsConcurrency) {
  Simulator sim;
  Semaphore sem(&sim, 2);
  std::vector<double> starts;
  for (int i = 0; i < 6; ++i) {
    sim.Spawn(UseSemaphore(sim, sem, SimTime::Seconds(1), starts));
  }
  sim.Run();
  // 2 at t=0, 2 at t=1, 2 at t=2.
  ASSERT_EQ(starts.size(), 6u);
  EXPECT_EQ(std::count(starts.begin(), starts.end(), 0.0), 2);
  EXPECT_EQ(std::count(starts.begin(), starts.end(), 1.0), 2);
  EXPECT_EQ(std::count(starts.begin(), starts.end(), 2.0), 2);
  EXPECT_EQ(sem.available(), 2);
}

TEST(SemaphoreTest, FifoOrdering) {
  Simulator sim;
  Semaphore sem(&sim, 1);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    sim.Spawn([](Simulator& s, Semaphore& sm, std::vector<int>& ord,
                 int id) -> Task<> {
      co_await sm.Acquire();
      ord.push_back(id);
      co_await s.Delay(SimTime::Seconds(1));
      sm.Release();
    }(sim, sem, order, i));
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

Task<> Producer(Simulator& sim, Mailbox<int>& mb, int count) {
  for (int i = 0; i < count; ++i) {
    co_await sim.Delay(SimTime::Seconds(1));
    mb.Send(i);
  }
}

Task<> Consumer(Simulator& sim, Mailbox<int>& mb, int count,
                std::vector<std::pair<int, double>>& received) {
  for (int i = 0; i < count; ++i) {
    int v = co_await mb.Receive();
    received.push_back({v, sim.Now().seconds()});
  }
}

TEST(MailboxTest, ProducerConsumer) {
  Simulator sim;
  Mailbox<int> mb(&sim);
  std::vector<std::pair<int, double>> received;
  sim.Spawn(Producer(sim, mb, 3));
  sim.Spawn(Consumer(sim, mb, 3, received));
  sim.Run();
  ASSERT_EQ(received.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(received[i].first, i);
    EXPECT_DOUBLE_EQ(received[i].second, i + 1.0);
  }
  EXPECT_TRUE(mb.empty());
}

TEST(MailboxTest, BufferedSendsConsumedImmediately) {
  Simulator sim;
  Mailbox<std::string> mb(&sim);
  mb.Send("a");
  mb.Send("b");
  EXPECT_EQ(mb.size(), 2u);
  std::vector<std::string> got;
  sim.Spawn([](Mailbox<std::string>& m, std::vector<std::string>& g)
                -> Task<> {
    g.push_back(co_await m.Receive());
    g.push_back(co_await m.Receive());
  }(mb, got));
  sim.Run();
  EXPECT_EQ(got, (std::vector<std::string>{"a", "b"}));
}

TEST(MailboxTest, MultipleReceiversServedInOrder) {
  Simulator sim;
  Mailbox<int> mb(&sim);
  std::vector<std::pair<int, int>> got;  // (receiver, value)
  for (int r = 0; r < 2; ++r) {
    sim.Spawn([](Mailbox<int>& m, std::vector<std::pair<int, int>>& g,
                 int id) -> Task<> {
      int v = co_await m.Receive();
      g.push_back({id, v});
    }(mb, got, r));
  }
  sim.Spawn([](Simulator& s, Mailbox<int>& m) -> Task<> {
    co_await s.Delay(SimTime::Seconds(1));
    m.Send(100);
    m.Send(200);
  }(sim, mb));
  sim.Run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], (std::pair<int, int>{0, 100}));
  EXPECT_EQ(got[1], (std::pair<int, int>{1, 200}));
}

}  // namespace
}  // namespace granula::sim
