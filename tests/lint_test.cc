#include "granula/archive/lint.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/random.h"
#include "granula/archive/archiver.h"
#include "granula/models/models.h"

namespace granula::core {
namespace {

// Root(0-10s) -> PhaseA(0-6s) -> Step-1, Step-2; PhaseB(6-10s).
// Op ids: Root=1, PhaseA=2, Step-1=3, Step-2=4, PhaseB=5.
std::vector<LogRecord> CleanLog() {
  SimTime now;
  JobLogger logger([&now] { return now; });
  OpId root = logger.StartOperation(kNoOp, "Job", "job-0", "Root");
  OpId phase_a =
      logger.StartOperation(root, "Job", "job-0", "PhaseA", "PhaseA");
  OpId step1 =
      logger.StartOperation(phase_a, "Worker", "Worker-1", "Step", "Step-1");
  logger.AddInfo(step1, "Items", Json(int64_t{100}));
  now = SimTime::Seconds(4);
  logger.EndOperation(step1);
  OpId step2 =
      logger.StartOperation(phase_a, "Worker", "Worker-2", "Step", "Step-2");
  now = SimTime::Seconds(6);
  logger.EndOperation(step2);
  logger.EndOperation(phase_a);
  OpId phase_b =
      logger.StartOperation(root, "Job", "job-0", "PhaseB", "PhaseB");
  now = SimTime::Seconds(10);
  logger.EndOperation(phase_b);
  logger.EndOperation(root);
  return logger.TakeRecords();
}

PerformanceModel SampleModel() {
  PerformanceModel model("sample");
  (void)model.AddRoot("Job", "Root");
  (void)model.AddOperation("Job", "PhaseA", "Job", "Root");
  (void)model.AddOperation("Job", "PhaseB", "Job", "Root");
  (void)model.AddOperation("Worker", "Step", "Job", "PhaseA");
  return model;
}

Archiver RepairArchiver() {
  Archiver::Options options;
  options.tolerance = Archiver::Tolerance::kRepair;
  return Archiver(options);
}

// A usable archive: root present with a positive duration, and the
// derivation rules ran (every op carries the implicit Duration info).
void ExpectUsable(const PerformanceArchive& archive) {
  ASSERT_NE(archive.root, nullptr);
  EXPECT_EQ(archive.root->mission_type, "Root");
  EXPECT_GT(archive.root->Duration(), SimTime());
  archive.root->Visit([](const ArchivedOperation& op) {
    EXPECT_TRUE(op.HasInfo("Duration")) << op.DisplayName();
  });
}

// ---- corruption class 1: truncated log (a StartOp lost mid-stream) ----

TEST(LintTest, TruncatedLog) {
  std::vector<LogRecord> records = CleanLog();
  // Lose Step-1's StartOp: its Info and EndOp records become orphans.
  records.erase(std::remove_if(records.begin(), records.end(),
                               [](const LogRecord& r) {
                                 return r.kind == LogRecord::Kind::kStartOp &&
                                        r.op_id == 3;
                               }),
                records.end());
  LintReport report = LintLog(records);
  EXPECT_EQ(report.CountOf(LintDefect::kOrphanInfo), 1u);
  EXPECT_EQ(report.CountOf(LintDefect::kOrphanEndOp), 1u);
  EXPECT_TRUE(report.HasFatal());

  auto strict = Archiver().Build(SampleModel(), records, {}, {});
  EXPECT_EQ(strict.status().code(), StatusCode::kCorruption);

  auto repaired = RepairArchiver().Build(SampleModel(), records, {}, {});
  ASSERT_TRUE(repaired.ok()) << repaired.status();
  ExpectUsable(*repaired);
  EXPECT_EQ(repaired->OperationCount(), 4u);  // Step-1 is gone
  EXPECT_EQ(repaired->lint.CountOf(LintDefect::kOrphanEndOp), 1u);
  EXPECT_EQ(repaired->lint.CountOf(LintDefect::kOrphanInfo), 1u);
}

// ---- corruption class 2: duplicate EndOp ----

TEST(LintTest, DuplicateEndOp) {
  std::vector<LogRecord> records = CleanLog();
  // A second, later EndOp for Step-1 (op 3): the first one must win.
  LogRecord dup;
  dup.kind = LogRecord::Kind::kEndOp;
  dup.seq = 100;
  dup.op_id = 3;
  dup.time = SimTime::Seconds(9);
  records.push_back(dup);

  LintReport report = LintLog(records);
  EXPECT_EQ(report.CountOf(LintDefect::kDuplicateEndOp), 1u);
  EXPECT_TRUE(report.HasFatal());

  auto strict = Archiver().Build(SampleModel(), records, {}, {});
  EXPECT_EQ(strict.status().code(), StatusCode::kCorruption);
  EXPECT_NE(strict.status().message().find("duplicate_end_op"),
            std::string::npos);

  auto repaired = RepairArchiver().Build(SampleModel(), records, {}, {});
  ASSERT_TRUE(repaired.ok()) << repaired.status();
  ExpectUsable(*repaired);
  const ArchivedOperation* step = repaired->FindByPath("Root/PhaseA/Step-1");
  ASSERT_NE(step, nullptr);
  EXPECT_EQ(step->EndTime(), SimTime::Seconds(4));  // first EndOp wins
  EXPECT_NE(step->FindInfo("EndTime")->source.find("quarantined"),
            std::string::npos);
  EXPECT_EQ(repaired->lint.CountOf(LintDefect::kDuplicateEndOp), 1u);
}

// ---- corruption class 3: inverted EndOp (end before start) ----

TEST(LintTest, EndBeforeStart) {
  std::vector<LogRecord> records = CleanLog();
  // Rewrite Step-2's EndOp (op 4, ends at 6s, starts at 4s) to end at 1s.
  for (LogRecord& r : records) {
    if (r.kind == LogRecord::Kind::kEndOp && r.op_id == 4) {
      r.time = SimTime::Seconds(1);
    }
  }
  LintReport report = LintLog(records);
  EXPECT_EQ(report.CountOf(LintDefect::kEndBeforeStart), 1u);
  EXPECT_TRUE(report.HasFatal());

  auto strict = Archiver().Build(SampleModel(), records, {}, {});
  EXPECT_EQ(strict.status().code(), StatusCode::kCorruption);

  auto repaired = RepairArchiver().Build(SampleModel(), records, {}, {});
  ASSERT_TRUE(repaired.ok()) << repaired.status();
  ExpectUsable(*repaired);
  const ArchivedOperation* step = repaired->FindByPath("Root/PhaseA/Step-2");
  ASSERT_NE(step, nullptr);
  // The inverted end is quarantined; EndTime is repaired to the start (no
  // children), never negative.
  EXPECT_GE(step->Duration(), SimTime());
  EXPECT_EQ(step->EndTime(), step->StartTime());
  EXPECT_EQ(repaired->lint.CountOf(LintDefect::kEndBeforeStart), 1u);
}

// ---- corruption class 4: orphan Info ----

TEST(LintTest, OrphanInfo) {
  std::vector<LogRecord> records = CleanLog();
  LogRecord orphan;
  orphan.kind = LogRecord::Kind::kInfo;
  orphan.seq = 101;
  orphan.op_id = 42;  // never started
  orphan.info_name = "ghost";
  orphan.info_value = Json(int64_t{1});
  records.push_back(orphan);

  LintReport report = LintLog(records);
  EXPECT_EQ(report.CountOf(LintDefect::kOrphanInfo), 1u);
  EXPECT_TRUE(report.HasFatal());

  auto strict = Archiver().Build(SampleModel(), records, {}, {});
  EXPECT_EQ(strict.status().code(), StatusCode::kCorruption);

  auto repaired = RepairArchiver().Build(SampleModel(), records, {}, {});
  ASSERT_TRUE(repaired.ok()) << repaired.status();
  ExpectUsable(*repaired);
  EXPECT_EQ(repaired->OperationCount(), 5u);  // nothing else lost
  EXPECT_EQ(repaired->lint.CountOf(LintDefect::kOrphanInfo), 1u);
}

// ---- corruption class 5: parent cycle ----

TEST(LintTest, ParentCycle) {
  std::vector<LogRecord> records = CleanLog();
  // Hand-craft a two-op cycle (A->B->A) plus a child dangling off it.
  LogRecord a;
  a.kind = LogRecord::Kind::kStartOp;
  a.seq = 102;
  a.op_id = 50;
  a.parent_id = 51;
  a.actor_type = "Ghost";
  a.mission_type = "A";
  LogRecord b = a;
  b.seq = 103;
  b.op_id = 51;
  b.parent_id = 50;
  b.mission_type = "B";
  LogRecord child = a;
  child.seq = 104;
  child.op_id = 52;
  child.parent_id = 50;
  child.mission_type = "C";
  records.push_back(a);
  records.push_back(b);
  records.push_back(child);

  LintReport report = LintLog(records);
  EXPECT_EQ(report.CountOf(LintDefect::kParentCycle), 1u);
  EXPECT_EQ(report.CountOf(LintDefect::kUnreachableSubtree), 1u);
  EXPECT_TRUE(report.HasFatal());

  auto strict = Archiver().Build(SampleModel(), records, {}, {});
  EXPECT_EQ(strict.status().code(), StatusCode::kCorruption);

  auto repaired = RepairArchiver().Build(SampleModel(), records, {}, {});
  ASSERT_TRUE(repaired.ok()) << repaired.status();
  ExpectUsable(*repaired);
  EXPECT_EQ(repaired->OperationCount(), 5u);  // the cycle is quarantined
}

TEST(LintTest, SelfParentIsACycle) {
  std::vector<LogRecord> records = CleanLog();
  LogRecord self;
  self.kind = LogRecord::Kind::kStartOp;
  self.seq = 105;
  self.op_id = 60;
  self.parent_id = 60;
  self.actor_type = "Ghost";
  self.mission_type = "Self";
  records.push_back(self);
  LintReport report = LintLog(records);
  EXPECT_EQ(report.CountOf(LintDefect::kParentCycle), 1u);
  auto repaired = RepairArchiver().Build(SampleModel(), records, {}, {});
  ASSERT_TRUE(repaired.ok()) << repaired.status();
  EXPECT_EQ(repaired->OperationCount(), 5u);
}

// ---- corruption class 6: multiple roots ----

TEST(LintTest, MultipleRoots) {
  std::vector<LogRecord> records = CleanLog();
  // An interleaved foreign job: a second root with one child.
  LogRecord other_root;
  other_root.kind = LogRecord::Kind::kStartOp;
  other_root.seq = 106;
  other_root.op_id = 70;
  other_root.parent_id = kNoOp;
  other_root.actor_type = "Job";
  other_root.mission_type = "Root";
  LogRecord other_child = other_root;
  other_child.seq = 107;
  other_child.op_id = 71;
  other_child.parent_id = 70;
  other_child.mission_type = "PhaseA";
  records.push_back(other_root);
  records.push_back(other_child);

  LintReport report = LintLog(records);
  EXPECT_EQ(report.CountOf(LintDefect::kMultipleRoots), 1u);
  EXPECT_EQ(report.CountOf(LintDefect::kUnreachableSubtree), 1u);
  EXPECT_TRUE(report.HasFatal());

  auto strict = Archiver().Build(SampleModel(), records, {}, {});
  EXPECT_EQ(strict.status().code(), StatusCode::kCorruption);

  // Repair keeps the larger subtree (the real job, 5 ops) and quarantines
  // the 2-op foreign one.
  auto repaired = RepairArchiver().Build(SampleModel(), records, {}, {});
  ASSERT_TRUE(repaired.ok()) << repaired.status();
  ExpectUsable(*repaired);
  EXPECT_EQ(repaired->OperationCount(), 5u);
  EXPECT_EQ(repaired->root->Duration(), SimTime::Seconds(10));
}

// ---- duplicate StartOp keeps the first record ----

TEST(LintTest, DuplicateStartOpKeepsFirst) {
  std::vector<LogRecord> records = CleanLog();
  LogRecord dup = records[0];  // Root's StartOp
  dup.seq = 108;
  dup.time = SimTime::Seconds(3);
  records.push_back(dup);
  LintReport report = LintLog(records);
  EXPECT_EQ(report.CountOf(LintDefect::kDuplicateStartOp), 1u);
  auto repaired = RepairArchiver().Build(SampleModel(), records, {}, {});
  ASSERT_TRUE(repaired.ok()) << repaired.status();
  EXPECT_EQ(repaired->root->StartTime(), SimTime());  // first start wins
}

// ---- clean logs stay clean ----

TEST(LintTest, CleanLogHasNoFindings) {
  LintReport report = LintLog(CleanLog());
  EXPECT_TRUE(report.clean());
  EXPECT_FALSE(report.HasFatal());
  EXPECT_EQ(report.Summary(), "log lint: clean");
  auto archive = RepairArchiver().Build(SampleModel(), CleanLog(), {}, {});
  ASSERT_TRUE(archive.ok());
  EXPECT_TRUE(archive->lint.clean());
  // No quarantine section for a clean archive.
  EXPECT_EQ(archive->ToJsonString().find("quarantined"), std::string::npos);
}

// ---- missing EndOp is a non-fatal, repaired finding in both modes ----

TEST(LintTest, MissingEndIsNonFatal) {
  std::vector<LogRecord> records = CleanLog();
  records.erase(std::remove_if(records.begin(), records.end(),
                               [](const LogRecord& r) {
                                 return r.kind == LogRecord::Kind::kEndOp &&
                                        r.op_id == 2;  // PhaseA
                               }),
                records.end());
  LintReport report = LintLog(records);
  EXPECT_EQ(report.CountOf(LintDefect::kMissingEndTime), 1u);
  EXPECT_FALSE(report.HasFatal());
  auto strict = Archiver().Build(SampleModel(), records, {}, {});
  ASSERT_TRUE(strict.ok()) << strict.status();
  EXPECT_EQ(strict->lint.CountOf(LintDefect::kMissingEndTime), 1u);
}

// ---- repair is deterministic under record reordering ----

TEST(LintTest, RepairIsOrderIndependent) {
  std::vector<LogRecord> records = CleanLog();
  LogRecord dup;
  dup.kind = LogRecord::Kind::kEndOp;
  dup.seq = 100;
  dup.op_id = 3;
  dup.time = SimTime::Seconds(9);
  records.push_back(dup);
  LogRecord orphan;
  orphan.kind = LogRecord::Kind::kInfo;
  orphan.seq = 101;
  orphan.op_id = 42;
  orphan.info_name = "ghost";
  records.push_back(orphan);

  auto ordered = RepairArchiver().Build(SampleModel(), records, {}, {});
  Rng rng(7);
  rng.Shuffle(records);
  auto shuffled = RepairArchiver().Build(SampleModel(), records, {}, {});
  ASSERT_TRUE(ordered.ok());
  ASSERT_TRUE(shuffled.ok());
  EXPECT_EQ(ordered->ToJsonString(), shuffled->ToJsonString());
}

// ---- quarantine section survives the JSON round-trip ----

TEST(LintTest, QuarantinedArchiveRoundtrips) {
  std::vector<LogRecord> records = CleanLog();
  LogRecord dup;
  dup.kind = LogRecord::Kind::kEndOp;
  dup.seq = 100;
  dup.op_id = 3;
  dup.time = SimTime::Seconds(9);
  records.push_back(dup);
  LogRecord orphan;
  orphan.kind = LogRecord::Kind::kInfo;
  orphan.seq = 101;
  orphan.op_id = 42;
  orphan.info_name = "ghost";
  records.push_back(orphan);

  auto archive = RepairArchiver().Build(SampleModel(), records, {},
                                        {{"platform", "test"}});
  ASSERT_TRUE(archive.ok()) << archive.status();
  ASSERT_FALSE(archive->lint.clean());

  auto reloaded =
      PerformanceArchive::FromJsonString(archive->ToJsonString());
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  EXPECT_EQ(reloaded->lint, archive->lint);
  EXPECT_EQ(reloaded->ToJsonString(), archive->ToJsonString());
}

// ---- defect names roundtrip ----

TEST(LintTest, DefectNamesRoundtrip) {
  for (LintDefect defect :
       {LintDefect::kDuplicateStartOp, LintDefect::kDuplicateEndOp,
        LintDefect::kEndBeforeStart, LintDefect::kOrphanInfo,
        LintDefect::kOrphanEndOp, LintDefect::kParentCycle,
        LintDefect::kUnreachableSubtree, LintDefect::kMultipleRoots,
        LintDefect::kMissingEndTime}) {
    auto parsed = ParseLintDefect(LintDefectName(defect));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, defect);
  }
  EXPECT_FALSE(ParseLintDefect("nonsense").ok());
}

// ---- end-to-end: a dirty PowerGraph-style log still archives ----

TEST(LintTest, DirtyLogUnderRealModel) {
  SimTime now;
  JobLogger logger([&now] { return now; });
  OpId job =
      logger.StartOperation(kNoOp, "Job", "job-0", "GraphProcessingJob");
  OpId load = logger.StartOperation(job, "Job", "job-0", "LoadGraph");
  now = SimTime::Seconds(5);
  logger.EndOperation(load);
  logger.EndOperation(load);  // duplicate
  now = SimTime::Seconds(9);
  logger.EndOperation(job);
  std::vector<LogRecord> records = logger.TakeRecords();
  LogRecord orphan;
  orphan.kind = LogRecord::Kind::kEndOp;
  orphan.seq = 200;
  orphan.op_id = 77;
  records.push_back(orphan);

  auto repaired =
      RepairArchiver().Build(MakePowerGraphModel(), records, {}, {});
  ASSERT_TRUE(repaired.ok()) << repaired.status();
  EXPECT_EQ(repaired->lint.CountOf(LintDefect::kDuplicateEndOp), 1u);
  EXPECT_EQ(repaired->lint.CountOf(LintDefect::kOrphanEndOp), 1u);
  ASSERT_NE(repaired->root, nullptr);
  EXPECT_EQ(repaired->root->Duration(), SimTime::Seconds(9));
}

}  // namespace
}  // namespace granula::core
