#include "algorithms/reference.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace granula::algo {
namespace {

using graph::Graph;
using graph::MakeBinaryTree;
using graph::MakeComplete;
using graph::MakeCycle;
using graph::MakePath;
using graph::MakeStar;

TEST(EdgeWeightTest, SymmetricDeterministicBounded) {
  for (uint64_t u = 0; u < 50; ++u) {
    for (uint64_t v = u + 1; v < 50; ++v) {
      double w = EdgeWeight(u, v);
      EXPECT_EQ(w, EdgeWeight(v, u));
      EXPECT_GE(w, 1.0);
      EXPECT_LE(w, 8.0);
      EXPECT_EQ(w, EdgeWeight(u, v));
    }
  }
}

TEST(ReferenceBfsTest, PathDistances) {
  auto dist = ReferenceBfs(MakePath(5), 0);
  for (uint64_t v = 0; v < 5; ++v) {
    EXPECT_DOUBLE_EQ(dist[v], static_cast<double>(v));
  }
}

TEST(ReferenceBfsTest, UnreachableIsInfinity) {
  auto g = Graph::Create(4, {{0, 1}}, false);
  auto dist = ReferenceBfs(*g, 0);
  EXPECT_DOUBLE_EQ(dist[1], 1.0);
  EXPECT_EQ(dist[2], kInfinity);
  EXPECT_EQ(dist[3], kInfinity);
}

TEST(ReferenceBfsTest, StarFromLeaf) {
  auto dist = ReferenceBfs(MakeStar(6), 3);
  EXPECT_DOUBLE_EQ(dist[3], 0.0);
  EXPECT_DOUBLE_EQ(dist[0], 1.0);
  EXPECT_DOUBLE_EQ(dist[1], 2.0);
  EXPECT_DOUBLE_EQ(dist[5], 2.0);
}

TEST(ReferenceSsspTest, PathSumsWeights) {
  auto dist = ReferenceSssp(MakePath(4), 0);
  EXPECT_DOUBLE_EQ(dist[0], 0.0);
  EXPECT_DOUBLE_EQ(dist[1], EdgeWeight(0, 1));
  EXPECT_DOUBLE_EQ(dist[2], EdgeWeight(0, 1) + EdgeWeight(1, 2));
  EXPECT_DOUBLE_EQ(dist[3],
                   EdgeWeight(0, 1) + EdgeWeight(1, 2) + EdgeWeight(2, 3));
}

TEST(ReferenceSsspTest, TakesShorterOfTwoRoutes) {
  // Triangle 0-1-2 plus direct 0-2: Dijkstra must pick the cheaper option.
  auto g = Graph::Create(3, {{0, 1}, {1, 2}, {0, 2}}, false);
  auto dist = ReferenceSssp(*g, 0);
  double via = EdgeWeight(0, 1) + EdgeWeight(1, 2);
  double direct = EdgeWeight(0, 2);
  EXPECT_DOUBLE_EQ(dist[2], std::min(via, direct));
}

TEST(ReferenceSsspTest, AtMostBfsHopsTimesMaxWeight) {
  auto graph = graph::GenerateUniform(300, 1200, 3);
  ASSERT_TRUE(graph.ok());
  auto hops = ReferenceBfs(*graph, 0);
  auto dist = ReferenceSssp(*graph, 0);
  for (uint64_t v = 0; v < 300; ++v) {
    if (hops[v] == kInfinity) {
      EXPECT_EQ(dist[v], kInfinity);
    } else {
      EXPECT_LE(dist[v], hops[v] * 8.0);
      EXPECT_GE(dist[v], hops[v] * 1.0);
    }
  }
}

TEST(ReferenceWccTest, LabelsAreComponentMinima) {
  auto g = Graph::Create(7, {{1, 2}, {2, 3}, {5, 6}}, false);
  auto label = ReferenceWcc(*g);
  EXPECT_DOUBLE_EQ(label[0], 0.0);
  EXPECT_DOUBLE_EQ(label[1], 1.0);
  EXPECT_DOUBLE_EQ(label[2], 1.0);
  EXPECT_DOUBLE_EQ(label[3], 1.0);
  EXPECT_DOUBLE_EQ(label[4], 4.0);
  EXPECT_DOUBLE_EQ(label[5], 5.0);
  EXPECT_DOUBLE_EQ(label[6], 5.0);
}

TEST(ReferenceWccTest, SingleComponent) {
  auto label = ReferenceWcc(MakeCycle(20));
  for (double l : label) EXPECT_DOUBLE_EQ(l, 0.0);
}

TEST(ReferencePageRankTest, SumsToOne) {
  auto graph = graph::GenerateUniform(200, 800, 5);
  ASSERT_TRUE(graph.ok());
  auto rank = ReferencePageRank(*graph, 20, 0.85);
  double sum = 0;
  for (double r : rank) sum += r;
  // Undirected power iteration conserves mass (no dangling vertices if all
  // have degree > 0; random graph may have isolated vertices, so allow 2%).
  EXPECT_NEAR(sum, 1.0, 0.02);
}

TEST(ReferencePageRankTest, SymmetryOnCompleteGraph) {
  auto rank = ReferencePageRank(MakeComplete(6), 10, 0.85);
  for (double r : rank) EXPECT_NEAR(r, 1.0 / 6.0, 1e-12);
}

TEST(ReferencePageRankTest, HubOutranksLeaves) {
  auto rank = ReferencePageRank(MakeStar(10), 15, 0.85);
  for (uint64_t v = 1; v < 10; ++v) {
    EXPECT_GT(rank[0], rank[v]);
    EXPECT_NEAR(rank[v], rank[1], 1e-12);
  }
}

TEST(ReferencePageRankTest, ZeroIterationsIsUniform) {
  auto rank = ReferencePageRank(MakeStar(4), 0, 0.85);
  for (double r : rank) EXPECT_DOUBLE_EQ(r, 0.25);
}

TEST(ReferenceCdlpTest, CliquesConvergeToMinLabel) {
  // Two triangles joined by one edge.
  auto g = Graph::Create(
      6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}}, false);
  auto label = ReferenceCdlp(*g, 10);
  EXPECT_DOUBLE_EQ(label[0], 0.0);
  EXPECT_DOUBLE_EQ(label[1], 0.0);
  EXPECT_DOUBLE_EQ(label[2], 0.0);
  // The bridge vertex's label (2) seeds the second triangle, which then
  // stabilizes as its own community under label 2.
  EXPECT_DOUBLE_EQ(label[3], 2.0);
  EXPECT_DOUBLE_EQ(label[4], 2.0);
  EXPECT_DOUBLE_EQ(label[5], 2.0);
}

TEST(ReferenceCdlpTest, IsolatedKeepsOwnLabel) {
  auto g = Graph::Create(3, {{0, 1}}, false);
  auto label = ReferenceCdlp(*g, 5);
  EXPECT_DOUBLE_EQ(label[2], 2.0);
}

TEST(ReferenceLccTest, TriangleIsOne) {
  auto lcc = ReferenceLcc(MakeComplete(3));
  for (double c : lcc) EXPECT_DOUBLE_EQ(c, 1.0);
}

TEST(ReferenceLccTest, CompleteGraphIsOne) {
  auto lcc = ReferenceLcc(MakeComplete(6));
  for (double c : lcc) EXPECT_DOUBLE_EQ(c, 1.0);
}

TEST(ReferenceLccTest, PathIsZero) {
  auto lcc = ReferenceLcc(MakePath(5));
  for (double c : lcc) EXPECT_DOUBLE_EQ(c, 0.0);
}

TEST(ReferenceLccTest, TriangleWithTail) {
  // 0-1-2 triangle, 2-3 tail: vertex 2 has degree 3, one link among nbrs.
  auto g = Graph::Create(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}}, false);
  auto lcc = ReferenceLcc(*g);
  EXPECT_DOUBLE_EQ(lcc[0], 1.0);
  EXPECT_DOUBLE_EQ(lcc[1], 1.0);
  EXPECT_DOUBLE_EQ(lcc[2], 2.0 * 1.0 / (3.0 * 2.0));
  EXPECT_DOUBLE_EQ(lcc[3], 0.0);
}

TEST(RunReferenceTest, DispatchesAllAlgorithms) {
  Graph g = MakeBinaryTree(15);
  for (AlgorithmId id : {AlgorithmId::kBfs, AlgorithmId::kPageRank,
                         AlgorithmId::kWcc, AlgorithmId::kSssp,
                         AlgorithmId::kCdlp, AlgorithmId::kLcc}) {
    AlgorithmSpec spec;
    spec.id = id;
    spec.max_iterations = 5;
    auto result = RunReference(g, spec);
    ASSERT_TRUE(result.ok()) << AlgorithmName(id);
    EXPECT_EQ(result->size(), 15u);
  }
}

TEST(AlgorithmNameTest, RoundtripsThroughParse) {
  for (AlgorithmId id : {AlgorithmId::kBfs, AlgorithmId::kPageRank,
                         AlgorithmId::kWcc, AlgorithmId::kSssp,
                         AlgorithmId::kCdlp, AlgorithmId::kLcc}) {
    auto parsed = ParseAlgorithm(AlgorithmName(id));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, id);
  }
  EXPECT_FALSE(ParseAlgorithm("NotAnAlgorithm").ok());
}

}  // namespace
}  // namespace granula::algo
