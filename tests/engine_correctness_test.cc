// Validates that the simulated Giraph (Pregel) and PowerGraph (GAS)
// engines compute exactly what the sequential reference implementations
// compute, across algorithms, graph shapes, and worker counts — the
// property that makes the performance experiments trustworthy.

#include <tuple>

#include <gtest/gtest.h>

#include "algorithms/reference.h"
#include "graph/generators.h"
#include "platforms/giraph.h"
#include "platforms/powergraph.h"

namespace granula::platform {
namespace {

using graph::Graph;

struct GraphCase {
  const char* name;
  Graph graph;
};

std::vector<GraphCase> GraphCases() {
  std::vector<GraphCase> cases;
  cases.push_back({"path", graph::MakePath(50)});
  cases.push_back({"star", graph::MakeStar(64)});
  cases.push_back({"binary_tree", graph::MakeBinaryTree(63)});
  cases.push_back({"grid", graph::MakeGrid(8, 8)});
  cases.push_back({"two_components",
                   *Graph::Create(40,
                                  []() {
                                    std::vector<graph::Edge> edges;
                                    for (uint64_t v = 0; v + 1 < 20; ++v) {
                                      edges.push_back({v, v + 1});
                                    }
                                    for (uint64_t v = 21; v + 1 < 40; ++v) {
                                      edges.push_back({v, v + 1});
                                    }
                                    return edges;
                                  }(),
                                  false)});
  graph::DatagenConfig datagen;
  datagen.num_vertices = 600;
  datagen.avg_degree = 8.0;
  datagen.seed = 99;
  cases.push_back({"datagen", *graph::GenerateDatagen(datagen)});
  cases.push_back({"uniform", *graph::GenerateUniform(300, 900, 7)});
  // Directed input: engines and references both traverse the undirected
  // view, so results must still agree.
  graph::RmatConfig rmat;
  rmat.scale = 9;
  rmat.edge_factor = 4.0;
  cases.push_back({"rmat_directed", *graph::GenerateRmat(rmat)});
  return cases;
}

cluster::ClusterConfig FastCluster() {
  cluster::ClusterConfig config;
  config.num_nodes = 4;
  return config;
}

JobConfig FastJob(uint32_t workers = 4) {
  JobConfig config;
  config.num_workers = workers;
  config.offload_results = true;
  return config;
}

// Cheap cost models keep virtual times small (irrelevant to correctness).
GiraphCostModel CheapGiraphCosts() {
  GiraphCostModel cost;
  cost.parse_cpu_per_byte = SimTime::Nanos(10);
  cost.compute_per_vertex = SimTime::Nanos(100);
  cost.compute_per_message = SimTime::Nanos(50);
  return cost;
}

PowerGraphCostModel CheapPowerGraphCosts() {
  PowerGraphCostModel cost;
  cost.parse_cpu_per_byte = SimTime::Nanos(10);
  cost.finalize_cpu_per_edge = SimTime::Nanos(50);
  return cost;
}

class EngineVsReference
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

algo::AlgorithmSpec SpecFor(algo::AlgorithmId id) {
  algo::AlgorithmSpec spec;
  spec.id = id;
  spec.source = 0;
  spec.max_iterations = 6;
  return spec;
}

constexpr algo::AlgorithmId kAlgorithms[] = {
    algo::AlgorithmId::kBfs, algo::AlgorithmId::kSssp,
    algo::AlgorithmId::kWcc, algo::AlgorithmId::kPageRank,
    algo::AlgorithmId::kCdlp};

TEST_P(EngineVsReference, GiraphMatchesReference) {
  auto [algo_index, case_index] = GetParam();
  algo::AlgorithmId id = kAlgorithms[algo_index];
  GraphCase gcase = GraphCases()[static_cast<size_t>(case_index)];
  algo::AlgorithmSpec spec = SpecFor(id);

  auto expected = algo::RunReference(gcase.graph, spec);
  ASSERT_TRUE(expected.ok());

  GiraphPlatform giraph(CheapGiraphCosts());
  auto result = giraph.Run(gcase.graph, spec, FastCluster(), FastJob());
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->vertex_values.size(), expected->size());
  for (size_t v = 0; v < expected->size(); ++v) {
    if (id == algo::AlgorithmId::kPageRank) {
      EXPECT_NEAR(result->vertex_values[v], (*expected)[v], 1e-9)
          << gcase.name << " vertex " << v;
    } else {
      EXPECT_DOUBLE_EQ(result->vertex_values[v], (*expected)[v])
          << gcase.name << " vertex " << v;
    }
  }
}

TEST_P(EngineVsReference, PowerGraphMatchesReference) {
  auto [algo_index, case_index] = GetParam();
  algo::AlgorithmId id = kAlgorithms[algo_index];
  if (id == algo::AlgorithmId::kCdlp) {
    GTEST_SKIP() << "CDLP has no scalar GAS formulation (documented)";
  }
  GraphCase gcase = GraphCases()[static_cast<size_t>(case_index)];
  algo::AlgorithmSpec spec = SpecFor(id);

  auto expected = algo::RunReference(gcase.graph, spec);
  ASSERT_TRUE(expected.ok());

  PowerGraphPlatform powergraph(CheapPowerGraphCosts());
  auto result = powergraph.Run(gcase.graph, spec, FastCluster(), FastJob());
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->vertex_values.size(), expected->size());
  for (size_t v = 0; v < expected->size(); ++v) {
    if (id == algo::AlgorithmId::kPageRank) {
      EXPECT_NEAR(result->vertex_values[v], (*expected)[v], 1e-9)
          << gcase.name << " vertex " << v;
    } else {
      EXPECT_DOUBLE_EQ(result->vertex_values[v], (*expected)[v])
          << gcase.name << " vertex " << v;
    }
  }
}

std::string EngineCaseName(
    const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  static const char* kAlgoNames[] = {"Bfs", "Sssp", "Wcc", "PageRank",
                                     "Cdlp"};
  static const char* kGraphNames[] = {"Path",          "Star",
                                      "BinaryTree",    "Grid",
                                      "TwoComponents", "Datagen",
                                      "Uniform",       "RmatDirected"};
  return std::string(kAlgoNames[std::get<0>(info.param)]) + "_" +
         kGraphNames[std::get<1>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAllGraphs, EngineVsReference,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Range(0, 8)),
    EngineCaseName);

// Worker-count sweep: the distributed answer must not depend on the
// partitioning degree.
class WorkerCountSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(WorkerCountSweep, GiraphBfsInvariantToWorkers) {
  uint32_t workers = GetParam();
  graph::DatagenConfig datagen;
  datagen.num_vertices = 400;
  datagen.avg_degree = 6.0;
  datagen.seed = 17;
  auto g = graph::GenerateDatagen(datagen);
  ASSERT_TRUE(g.ok());
  algo::AlgorithmSpec spec = SpecFor(algo::AlgorithmId::kBfs);
  auto expected = algo::ReferenceBfs(*g, 0);

  cluster::ClusterConfig cc = FastCluster();
  cc.num_nodes = std::max(workers, 2u);
  GiraphPlatform giraph(CheapGiraphCosts());
  auto result = giraph.Run(*g, spec, cc, FastJob(workers));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->vertex_values, expected);
}

TEST_P(WorkerCountSweep, PowerGraphWccInvariantToWorkers) {
  uint32_t workers = GetParam();
  auto g = graph::GenerateUniform(300, 600, 23);
  ASSERT_TRUE(g.ok());
  algo::AlgorithmSpec spec = SpecFor(algo::AlgorithmId::kWcc);
  auto expected = algo::ReferenceWcc(*g);

  cluster::ClusterConfig cc = FastCluster();
  cc.num_nodes = std::max(workers, 2u);
  PowerGraphPlatform powergraph(CheapPowerGraphCosts());
  auto result = powergraph.Run(*g, spec, cc, FastJob(workers));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->vertex_values, expected);
}

INSTANTIATE_TEST_SUITE_P(OneToEight, WorkerCountSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u));

TEST(EngineValidationTest, RejectsBadWorkerCounts) {
  Graph g = graph::MakePath(10);
  algo::AlgorithmSpec spec = SpecFor(algo::AlgorithmId::kBfs);
  GiraphPlatform giraph;
  EXPECT_FALSE(giraph.Run(g, spec, FastCluster(), FastJob(0)).ok());
  EXPECT_FALSE(giraph.Run(g, spec, FastCluster(), FastJob(99)).ok());
  PowerGraphPlatform powergraph;
  EXPECT_FALSE(powergraph.Run(g, spec, FastCluster(), FastJob(0)).ok());
}

TEST(EngineValidationTest, LccRejectedByBothEngines) {
  Graph g = graph::MakePath(10);
  algo::AlgorithmSpec spec = SpecFor(algo::AlgorithmId::kLcc);
  EXPECT_EQ(GiraphPlatform().Run(g, spec, FastCluster(), FastJob())
                .status()
                .code(),
            StatusCode::kUnimplemented);
  EXPECT_EQ(PowerGraphPlatform().Run(g, spec, FastCluster(), FastJob())
                .status()
                .code(),
            StatusCode::kUnimplemented);
}

TEST(EngineDeterminismTest, IdenticalRunsProduceIdenticalLogs) {
  graph::DatagenConfig datagen;
  datagen.num_vertices = 300;
  datagen.seed = 31;
  auto g = graph::GenerateDatagen(datagen);
  ASSERT_TRUE(g.ok());
  algo::AlgorithmSpec spec = SpecFor(algo::AlgorithmId::kBfs);

  GiraphPlatform giraph(CheapGiraphCosts());
  auto a = giraph.Run(*g, spec, FastCluster(), FastJob());
  auto b = giraph.Run(*g, spec, FastCluster(), FastJob());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->total_seconds, b->total_seconds);
  ASSERT_EQ(a->records.size(), b->records.size());
  for (size_t i = 0; i < a->records.size(); ++i) {
    EXPECT_EQ(a->records[i].time, b->records[i].time) << i;
    EXPECT_EQ(a->records[i].mission_id, b->records[i].mission_id) << i;
  }
  EXPECT_EQ(a->environment.size(), b->environment.size());
}

TEST(EngineStatsTest, BfsSuperstepCountMatchesEccentricity) {
  Graph g = graph::MakePath(12);  // eccentricity 11 from vertex 0
  algo::AlgorithmSpec spec = SpecFor(algo::AlgorithmId::kBfs);
  GiraphPlatform giraph(CheapGiraphCosts());
  auto result = giraph.Run(g, spec, FastCluster(), FastJob());
  ASSERT_TRUE(result.ok());
  // Superstep s computes frontier at distance s; one trailing superstep
  // delivers the last (fruitless) messages.
  EXPECT_EQ(result->supersteps, 13u);
}

TEST(EngineStatsTest, MonitorAndNetworkPopulated) {
  graph::DatagenConfig datagen;
  datagen.num_vertices = 500;
  datagen.seed = 3;
  auto g = graph::GenerateDatagen(datagen);
  ASSERT_TRUE(g.ok());
  algo::AlgorithmSpec spec = SpecFor(algo::AlgorithmId::kBfs);
  GiraphPlatform giraph;  // default (calibrated) costs: long virtual run
  auto result = giraph.Run(*g, spec, FastCluster(), FastJob());
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->total_seconds, 1.0);
  EXPECT_FALSE(result->environment.empty());
  EXPECT_GT(result->network_bytes, 0u);
  EXPECT_FALSE(result->records.empty());
}

}  // namespace
}  // namespace granula::platform
