// The GBA binary codec's one contract: for every archive the pipeline can
// produce, ToJson(Decode(Encode(a))) == ToJson(a), byte for byte. These
// tests sweep that across all five implemented platforms x three
// algorithms, faulted and quarantined runs, randomized info values, and a
// committed golden fixture that fails loudly if the format ever changes
// without a version bump. Partial decodes (one subtree, level cuts) must
// agree exactly with the full decode.

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/thread_pool.h"
#include "granula/archive/archiver.h"
#include "granula/archive/gba.h"
#include "granula/models/models.h"
#include "graph/generators.h"
#include "platforms/giraph.h"
#include "platforms/graphmat.h"
#include "platforms/hadoop.h"
#include "platforms/pgxd.h"
#include "platforms/powergraph.h"

namespace granula::platform {
namespace {

constexpr const char* kPlatformNames[] = {"Giraph", "PowerGraph", "GraphMat",
                                          "Pgxd", "Hadoop"};

class PoolSizeGuard {
 public:
  PoolSizeGuard() : original_(ThreadPool::Global().num_threads()) {}
  ~PoolSizeGuard() { ThreadPool::Global().Resize(original_); }

 private:
  int original_;
};

graph::Graph TestGraph() {
  graph::DatagenConfig config;
  config.num_vertices = 1200;
  config.avg_degree = 6.0;
  config.seed = 17;
  auto g = graph::GenerateDatagen(config);
  EXPECT_TRUE(g.ok());
  return std::move(*g);
}

algo::AlgorithmSpec SpecFor(algo::AlgorithmId id) {
  algo::AlgorithmSpec spec;
  spec.id = id;
  spec.source = 1;
  if (id == algo::AlgorithmId::kPageRank) spec.max_iterations = 4;
  return spec;
}

Result<JobResult> RunPlatform(int which, const graph::Graph& g,
                              const algo::AlgorithmSpec& spec,
                              const JobConfig& job = {}) {
  cluster::ClusterConfig cluster;
  switch (which) {
    case 0:
      return GiraphPlatform().Run(g, spec, cluster, job);
    case 1:
      return PowerGraphPlatform().Run(g, spec, cluster, job);
    case 2:
      return GraphMatPlatform().Run(g, spec, cluster, job);
    case 3:
      return PgxdPlatform().Run(g, spec, cluster, job);
    default:
      return HadoopPlatform().Run(g, spec, cluster, job);
  }
}

core::PerformanceModel ModelFor(int which) {
  switch (which) {
    case 0:
      return core::MakeGiraphModel();
    case 1:
      return core::MakePowerGraphModel();
    case 2:
      return core::MakeGraphMatModel();
    case 3:
      return core::MakePgxdModel();
    default:
      return core::MakeHadoopModel();
  }
}

core::PerformanceArchive BuildArchive(int which, algo::AlgorithmId id,
                                      const JobConfig& job = {}) {
  const graph::Graph g = TestGraph();
  auto result = RunPlatform(which, g, SpecFor(id), job);
  EXPECT_TRUE(result.ok()) << result.status();
  auto archive = core::Archiver().Build(
      ModelFor(which), result->records, std::move(result->environment),
      {{"platform", kPlatformNames[which]}, {"algorithm", "x"}});
  EXPECT_TRUE(archive.ok()) << archive.status();
  return std::move(archive).value();
}

// The contract under test, spelled out once.
void ExpectByteExactRoundTrip(const core::PerformanceArchive& archive,
                              const std::string& label) {
  const std::string gba = core::EncodeGba(archive);
  EXPECT_TRUE(core::LooksLikeGba(gba)) << label;
  auto reader = core::GbaReader::Open(gba);
  ASSERT_TRUE(reader.ok()) << label << ": " << reader.status();
  auto decoded = reader->DecodeArchive();
  ASSERT_TRUE(decoded.ok()) << label << ": " << decoded.status();
  EXPECT_EQ(decoded->ToJsonString(), archive.ToJsonString())
      << label << ": decode(encode(a)) diverged";
  // Determinism: equal archives encode to identical bytes.
  EXPECT_EQ(core::EncodeGba(*decoded), gba) << label;
}

// ------------------------------------------------ platform sweep ----------

class GbaPlatformSweep
    : public ::testing::TestWithParam<std::tuple<int, algo::AlgorithmId>> {};

TEST_P(GbaPlatformSweep, RoundTripIsByteExact) {
  const auto [which, id] = GetParam();
  ExpectByteExactRoundTrip(BuildArchive(which, id), kPlatformNames[which]);
}

INSTANTIATE_TEST_SUITE_P(
    AllPlatforms, GbaPlatformSweep,
    ::testing::Combine(::testing::Range(0, 5),
                       ::testing::Values(algo::AlgorithmId::kBfs,
                                         algo::AlgorithmId::kPageRank,
                                         algo::AlgorithmId::kWcc)));

TEST(GbaFaultedTest, CrashRecoveryArchivesRoundTrip) {
  // Failure operations (FailedAttempt/Restart), LostTime metrics, and the
  // fault-shaped tree must all survive the binary form.
  for (int which = 0; which < 5; ++which) {
    JobConfig job;
    sim::FaultSpec crash;
    crash.kind = sim::FaultKind::kWorkerCrash;
    crash.worker = 2;
    crash.step = 1;
    job.faults.Add(crash);
    ExpectByteExactRoundTrip(
        BuildArchive(which, algo::AlgorithmId::kPageRank, job),
        std::string(kPlatformNames[which]) + " faulted");
  }
}

TEST(GbaFaultedTest, QuarantinedArchiveRoundTripsLintReport) {
  // A torn log repaired under Tolerance::kRepair carries a non-empty
  // quarantine section; the lint findings must round trip exactly.
  const graph::Graph g = TestGraph();
  JobConfig job;
  sim::FaultSpec drop;
  drop.kind = sim::FaultKind::kLogWrite;
  drop.log_seq = 40;
  drop.log_effect = sim::LogWriteFault::kDrop;
  job.faults.Add(drop);
  auto result = RunPlatform(0, g, SpecFor(algo::AlgorithmId::kPageRank), job);
  ASSERT_TRUE(result.ok()) << result.status();

  core::Archiver::Options options;
  options.tolerance = core::Archiver::Tolerance::kRepair;
  auto archive = core::Archiver(options).Build(
      core::MakeGiraphModel(), result->records,
      std::move(result->environment), {{"platform", "Giraph"}});
  ASSERT_TRUE(archive.ok()) << archive.status();
  ASSERT_FALSE(archive->lint.clean());

  const std::string gba = core::EncodeGba(*archive);
  auto reader = core::GbaReader::Open(gba);
  ASSERT_TRUE(reader.ok()) << reader.status();
  auto decoded = reader->DecodeArchive();
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->lint, archive->lint);
  EXPECT_EQ(decoded->ToJsonString(), archive->ToJsonString());
}

// ------------------------------------------- randomized info values ------

std::string RandomName(Rng& rng) {
  std::string s = "K";
  const size_t len = 1 + rng.NextBounded(12);
  for (size_t i = 0; i < len; ++i) {
    s += static_cast<char>('a' + rng.NextBounded(26));
  }
  return s;
}

Json RandomValue(Rng& rng, int depth) {
  switch (rng.NextBounded(depth >= 3 ? 5 : 7)) {
    case 0:
      return Json();
    case 1:
      return Json(rng.NextBool(0.5));
    case 2:
      return Json(rng.NextInt(-1000000000000000000, 1000000000000000000));
    case 3:
      return Json(rng.NextDouble() * 1e9 - 5e8);
    case 4:
      return Json(RandomName(rng));
    case 5: {
      Json arr = Json::MakeArray();
      const uint64_t n = rng.NextBounded(4);
      for (uint64_t i = 0; i < n; ++i) arr.Append(RandomValue(rng, depth + 1));
      return arr;
    }
    default: {
      Json obj = Json::MakeObject();
      const uint64_t n = rng.NextBounded(4);
      for (uint64_t i = 0; i < n; ++i) {
        obj[RandomName(rng)] = RandomValue(rng, depth + 1);
      }
      return obj;
    }
  }
}

TEST(GbaPropertyTest, RandomInfoValuesRoundTripByteExact) {
  // Every Json shape an info can carry — nulls, both bools, full-range
  // ints, doubles, strings, nested arrays/objects — through the tagged
  // binary value encoding. 40 seeded variants on a real archive.
  core::PerformanceArchive base = BuildArchive(0, algo::AlgorithmId::kBfs);
  Rng rng(20260809);
  for (int iteration = 0; iteration < 40; ++iteration) {
    core::PerformanceArchive archive;
    archive.job_metadata = base.job_metadata;
    archive.model_name = base.model_name;
    archive.status = base.status;
    archive.environment = base.environment;
    archive.lint = base.lint;
    archive.root = base.root->Clone();
    const int infos = 1 + static_cast<int>(rng.NextBounded(6));
    for (int i = 0; i < infos; ++i) {
      archive.root->SetInfo(RandomName(rng), RandomValue(rng, 0),
                            rng.NextBool(0.5) ? "measured" : "derived");
    }
    ExpectByteExactRoundTrip(archive,
                             "iteration " + std::to_string(iteration));
  }
}

// ------------------------------------------------- partial decodes --------

TEST(GbaPartialTest, SubtreeMatchesFindByPath) {
  core::PerformanceArchive archive =
      BuildArchive(0, algo::AlgorithmId::kPageRank);
  const std::string gba = core::EncodeGba(archive);
  auto reader = core::GbaReader::Open(gba);
  ASSERT_TRUE(reader.ok());

  // Pick a mid-tree path from the archive itself: the root's second child.
  ASSERT_GE(archive.root->children.size(), 2u);
  const core::ArchivedOperation& child = *archive.root->children[1];
  const std::string segment =
      child.mission_id.empty() ? child.mission_type : child.mission_id;
  const std::string path = archive.root->mission_id + "/" + segment;

  const core::ArchivedOperation* expected = archive.FindByPath(path);
  ASSERT_NE(expected, nullptr) << path;
  auto subtree = reader->DecodeSubtree(path);
  ASSERT_TRUE(subtree.ok()) << path << ": " << subtree.status();
  EXPECT_EQ((*subtree)->ToJson().Dump(2), expected->ToJson().Dump(2));
  EXPECT_EQ((*subtree)->SubtreeSize(), expected->SubtreeSize());

  auto missing = reader->DecodeSubtree("Root/NoSuchChild");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(GbaPartialTest, ShallowDecodeCutsAtLevel) {
  core::PerformanceArchive archive =
      BuildArchive(0, algo::AlgorithmId::kPageRank);
  const std::string gba = core::EncodeGba(archive);
  auto reader = core::GbaReader::Open(gba);
  ASSERT_TRUE(reader.ok());

  auto level1 = reader->DecodeShallow(1);
  ASSERT_TRUE(level1.ok());
  EXPECT_EQ(level1->OperationCount(), 1u);  // root only
  EXPECT_TRUE(level1->root->children.empty());
  // The cut drops children, never the root's own payload.
  EXPECT_EQ(level1->root->infos.size(), archive.root->infos.size());

  auto level2 = reader->DecodeShallow(2);
  ASSERT_TRUE(level2.ok());
  EXPECT_EQ(level2->OperationCount(), 1u + archive.root->children.size());

  auto full = reader->DecodeShallow(0);  // <= 0: no cut
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->ToJsonString(), archive.ToJsonString());
}

// ------------------------------------------------- format hygiene --------

TEST(GbaFormatTest, RejectsBadMagicAndWrongVersion) {
  core::PerformanceArchive archive = BuildArchive(0, algo::AlgorithmId::kBfs);
  std::string gba = core::EncodeGba(archive);

  std::string bad_magic = gba;
  bad_magic[0] = 'X';
  EXPECT_FALSE(core::LooksLikeGba(bad_magic));
  EXPECT_FALSE(core::GbaReader::Open(bad_magic).ok());

  std::string bad_version = gba;
  bad_version[4] = static_cast<char>(core::kGbaVersion + 1);
  auto reader = core::GbaReader::Open(bad_version);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(reader.status().message().find("version"), std::string::npos);
}

TEST(GbaFormatTest, TruncationIsCorruptionNeverACrash) {
  core::PerformanceArchive archive = BuildArchive(0, algo::AlgorithmId::kBfs);
  const std::string gba = core::EncodeGba(archive);
  // Every prefix strictly shorter than the file must fail cleanly. Step
  // through a spread of cut points, always including the header boundary.
  for (size_t cut : {size_t{0}, size_t{4}, size_t{16}, size_t{71},
                     gba.size() / 4, gba.size() / 2, gba.size() - 1}) {
    auto reader = core::GbaReader::Open(gba.substr(0, cut));
    if (!reader.ok()) continue;  // header already rejected — fine
    EXPECT_FALSE(reader->DecodeArchive().ok()) << "cut at " << cut;
  }
}

TEST(GbaFormatTest, ByteIdenticalAcrossHostThreadCounts) {
  // GRANULA_HOST_THREADS is a pure performance knob: the encoded bytes
  // must not depend on the pool size, or packed repositories would stop
  // being diffable across machines.
  PoolSizeGuard guard;
  std::vector<std::string> encodings;
  for (int threads : {1, 2, 8}) {
    ThreadPool::Global().Resize(threads);
    encodings.push_back(
        core::EncodeGba(BuildArchive(0, algo::AlgorithmId::kPageRank)));
  }
  EXPECT_EQ(encodings[0], encodings[1]);
  EXPECT_EQ(encodings[0], encodings[2]);
}

// ------------------------------------------------- golden fixture --------

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(GbaGoldenTest, CommittedFixtureStillEncodesByteExact) {
  // tests/data/golden_archive.{json,gba} are the same archive in both
  // formats, committed once. If this test fails you changed the on-disk
  // GBA layout: bump kGbaVersion, keep a reader for the old version (or
  // document the break), and regenerate the fixture — do NOT just refresh
  // the bytes and move on.
  const std::string dir = GRANULA_TEST_DATA_DIR;
  const std::string golden_json = ReadFileOrDie(dir + "/golden_archive.json");
  const std::string golden_gba = ReadFileOrDie(dir + "/golden_archive.gba");
  ASSERT_FALSE(golden_json.empty());
  ASSERT_FALSE(golden_gba.empty());

  auto archive = core::PerformanceArchive::FromJsonString(golden_json);
  ASSERT_TRUE(archive.ok()) << archive.status();

  EXPECT_EQ(core::kGbaVersion, 1u)
      << "version bumped: regenerate the golden fixture and keep this test "
         "honest about the new layout";
  const std::string encoded = core::EncodeGba(*archive);
  ASSERT_EQ(encoded.size(), golden_gba.size())
      << "GBA layout changed without a version bump";
  EXPECT_TRUE(encoded == golden_gba)
      << "GBA byte layout changed without a version bump";

  auto reader = core::GbaReader::Open(golden_gba);
  ASSERT_TRUE(reader.ok()) << reader.status();
  auto decoded = reader->DecodeArchive();
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->ToJsonString(), archive->ToJsonString());
}

}  // namespace
}  // namespace granula::platform
