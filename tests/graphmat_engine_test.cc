// Correctness and behavior tests for the GraphMat-like SpMV engine.

#include <gtest/gtest.h>

#include "algorithms/reference.h"
#include "granula/archive/archiver.h"
#include "granula/models/models.h"
#include "graph/generators.h"
#include "platforms/graphmat.h"
#include "platforms/pgxd.h"

namespace granula::platform {
namespace {

cluster::ClusterConfig FastCluster() {
  cluster::ClusterConfig config;
  config.num_nodes = 4;
  return config;
}

JobConfig FastJob() {
  JobConfig config;
  config.num_workers = 4;
  return config;
}

class GraphMatVsReference : public ::testing::TestWithParam<int> {};

constexpr algo::AlgorithmId kAlgorithms[] = {
    algo::AlgorithmId::kBfs, algo::AlgorithmId::kSssp,
    algo::AlgorithmId::kWcc, algo::AlgorithmId::kPageRank};

TEST_P(GraphMatVsReference, MatchesReference) {
  algo::AlgorithmId id = kAlgorithms[GetParam()];
  graph::DatagenConfig config;
  config.num_vertices = 600;
  config.avg_degree = 8.0;
  config.seed = 66;
  auto g = graph::GenerateDatagen(config);
  ASSERT_TRUE(g.ok());

  algo::AlgorithmSpec spec;
  spec.id = id;
  spec.source = 0;
  spec.max_iterations = 5;
  auto expected = algo::RunReference(*g, spec);
  ASSERT_TRUE(expected.ok());

  GraphMatPlatform graphmat;
  auto result = graphmat.Run(*g, spec, FastCluster(), FastJob());
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->vertex_values.size(), expected->size());
  for (size_t v = 0; v < expected->size(); ++v) {
    if (id == algo::AlgorithmId::kPageRank) {
      EXPECT_NEAR(result->vertex_values[v], (*expected)[v], 1e-9) << v;
    } else {
      EXPECT_DOUBLE_EQ(result->vertex_values[v], (*expected)[v]) << v;
    }
  }
}

std::string GraphMatCaseName(const ::testing::TestParamInfo<int>& info) {
  static const char* kNames[] = {"Bfs", "Sssp", "Wcc", "PageRank"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllGasAlgorithms, GraphMatVsReference,
                         ::testing::Range(0, 4), GraphMatCaseName);

core::PerformanceArchive ArchiveRun(algo::AlgorithmId id) {
  graph::DatagenConfig config;
  config.num_vertices = 8000;
  config.avg_degree = 10.0;
  config.seed = 6;
  auto g = graph::GenerateDatagen(config);
  algo::AlgorithmSpec spec;
  spec.id = id;
  spec.source = 1;
  spec.max_iterations = 6;
  GraphMatPlatform graphmat;
  auto result =
      graphmat.Run(*g, spec, cluster::ClusterConfig{}, JobConfig{});
  EXPECT_TRUE(result.ok()) << result.status();
  auto archive = core::Archiver().Build(core::MakeGraphMatModel(),
                                        result->records,
                                        std::move(result->environment), {});
  EXPECT_TRUE(archive.ok()) << archive.status();
  return std::move(archive).value();
}

TEST(GraphMatEngineTest, MatrixUtilizationLowForBfsHighForPageRank) {
  // BFS: most iterations touch a small fraction of the matrix, yet the
  // SpMV streams everything — the engine's documented inefficiency.
  core::PerformanceArchive bfs = ArchiveRun(algo::AlgorithmId::kBfs);
  double bfs_util_sum = 0;
  int bfs_count = 0;
  for (const core::ArchivedOperation* op :
       bfs.FindOperations("Rank", "Spmv")) {
    bfs_util_sum += op->InfoNumber("MatrixUtilization");
    ++bfs_count;
  }
  ASSERT_GT(bfs_count, 0);
  double bfs_mean = bfs_util_sum / bfs_count;

  core::PerformanceArchive pagerank =
      ArchiveRun(algo::AlgorithmId::kPageRank);
  double pr_util_sum = 0;
  int pr_count = 0;
  for (const core::ArchivedOperation* op :
       pagerank.FindOperations("Rank", "Spmv")) {
    pr_util_sum += op->InfoNumber("MatrixUtilization");
    ++pr_count;
  }
  ASSERT_GT(pr_count, 0);
  double pr_mean = pr_util_sum / pr_count;

  EXPECT_LT(bfs_mean, 0.5);
  EXPECT_GT(pr_mean, 0.95);  // all-active: every nonzero is live
}

TEST(GraphMatEngineTest, BfsProcessingSlowerThanFrontierEngine) {
  // The GraphMat paper's trade-off, measured through the domain model:
  // full-matrix streaming hurts traversals relative to a frontier engine
  // (PGX.D), while PageRank stays competitive.
  graph::DatagenConfig config;
  config.num_vertices = 8000;
  config.avg_degree = 10.0;
  config.seed = 6;
  auto g = graph::GenerateDatagen(config);

  auto run_tp = [&](auto& platform, algo::AlgorithmId id) {
    algo::AlgorithmSpec spec;
    spec.id = id;
    spec.source = 1;
    spec.max_iterations = 6;
    auto result =
        platform.Run(*g, spec, cluster::ClusterConfig{}, JobConfig{});
    EXPECT_TRUE(result.ok());
    auto archive = core::Archiver().Build(
        core::MakeGraphProcessingDomainModel(), result->records, {}, {});
    return archive->root->InfoNumber("ProcessingTime") * 1e-9;
  };

  GraphMatPlatform graphmat;
  PgxdPlatform pgxd;
  double graphmat_bfs = run_tp(graphmat, algo::AlgorithmId::kBfs);
  double pgxd_bfs = run_tp(pgxd, algo::AlgorithmId::kBfs);
  double graphmat_pr = run_tp(graphmat, algo::AlgorithmId::kPageRank);
  double pgxd_pr = run_tp(pgxd, algo::AlgorithmId::kPageRank);

  // Traversal: streaming the full matrix per superstep is markedly slower
  // than a frontier engine.
  EXPECT_GT(graphmat_bfs, 1.5 * pgxd_bfs);
  // All-active iteration: GraphMat stays competitive (same order).
  EXPECT_LT(graphmat_pr, 2.0 * pgxd_pr);
}

TEST(GraphMatEngineTest, ArchiveStructure) {
  core::PerformanceArchive archive = ArchiveRun(algo::AlgorithmId::kBfs);
  const core::ArchivedOperation* process =
      archive.FindByPath("GraphMatJob/ProcessGraph");
  ASSERT_NE(process, nullptr);
  EXPECT_GT(process->InfoNumber("IterationCount"), 2.0);
  for (const core::ArchivedOperation* iteration :
       archive.FindOperations("Engine", "Iteration")) {
    EXPECT_EQ(iteration->children.size(), 8u * 2u);  // Spmv+Apply per rank
  }
}

TEST(GraphMatEngineTest, RejectsBadConfigs) {
  graph::Graph g = graph::MakePath(10);
  algo::AlgorithmSpec spec;
  spec.id = algo::AlgorithmId::kBfs;
  JobConfig zero;
  zero.num_workers = 0;
  EXPECT_FALSE(GraphMatPlatform().Run(g, spec, FastCluster(), zero).ok());
  spec.id = algo::AlgorithmId::kLcc;
  EXPECT_EQ(GraphMatPlatform()
                .Run(g, spec, FastCluster(), FastJob())
                .status()
                .code(),
            StatusCode::kUnimplemented);
}

TEST(GraphMatEngineTest, ModelValidates) {
  EXPECT_TRUE(core::MakeGraphMatModel().Validate().ok());
}

}  // namespace
}  // namespace granula::platform
