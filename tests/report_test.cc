#include "granula/visual/report.h"

#include <fstream>

#include <gtest/gtest.h>

#include "granula/archive/archiver.h"
#include "granula/model/performance_model.h"
#include "granula/monitor/job_logger.h"

namespace granula::core {
namespace {

PerformanceArchive MakeArchive() {
  SimTime now;
  JobLogger logger([&now] { return now; });
  OpId root = logger.StartOperation(kNoOp, "Job", "job", "Root", "Root");
  OpId phase =
      logger.StartOperation(root, "Job", "job", "BigPhase", "BigPhase");
  OpId local = logger.StartOperation(phase, "Worker", "Worker-1",
                                     "LocalSuperstep", "LocalSuperstep-1");
  now = SimTime::Seconds(9);
  logger.EndOperation(local);
  logger.EndOperation(phase);
  OpId small =
      logger.StartOperation(root, "Job", "job", "SmallPhase", "SmallPhase");
  now = SimTime::Seconds(10);
  logger.EndOperation(small);
  logger.EndOperation(root);

  PerformanceModel model("m");
  (void)model.AddRoot("Job", "Root");
  (void)model.AddOperation("Job", "BigPhase", "Job", "Root");
  (void)model.AddOperation("Job", "SmallPhase", "Job", "Root");
  (void)model.AddOperation("Worker", "LocalSuperstep", "Job", "BigPhase");

  std::vector<EnvironmentRecord> env;
  for (int t = 1; t <= 10; ++t) {
    EnvironmentRecord r;
    r.node = 0;
    r.hostname = "node339";
    r.time_seconds = t;
    r.cpu_seconds_per_second = 3.0;
    env.push_back(r);
  }
  auto archive = Archiver().Build(model, logger.records(), std::move(env),
                                  {{"platform", "TestPlat<form>"}});
  EXPECT_TRUE(archive.ok());
  return std::move(archive).value();
}

TEST(ReportTest, ContainsAllSections) {
  std::string html = RenderHtmlReport(MakeArchive(), ReportOptions{});
  EXPECT_EQ(html.find("<!DOCTYPE html>"), 0u);
  EXPECT_NE(html.find("Job decomposition"), std::string::npos);
  EXPECT_NE(html.find("Resource utilization"), std::string::npos);
  EXPECT_NE(html.find("Worker timeline"), std::string::npos);
  EXPECT_NE(html.find("Automated findings"), std::string::npos);
  EXPECT_NE(html.find("Operations"), std::string::npos);
  EXPECT_NE(html.find("BigPhase"), std::string::npos);
  // Findings: BigPhase is 90% -> dominant phase reported in the HTML.
  EXPECT_NE(html.find("dominant_phase"), std::string::npos);
}

TEST(ReportTest, EscapesMetadata) {
  std::string html = RenderHtmlReport(MakeArchive(), ReportOptions{});
  EXPECT_EQ(html.find("TestPlat<form>"), std::string::npos);
  EXPECT_NE(html.find("TestPlat&lt;form&gt;"), std::string::npos);
}

TEST(ReportTest, FindingsCanBeDisabled) {
  ReportOptions options;
  options.include_findings = false;
  std::string html = RenderHtmlReport(MakeArchive(), options);
  EXPECT_EQ(html.find("Automated findings"), std::string::npos);
}

TEST(ReportTest, TimelineSkippedWhenNoMatch) {
  ReportOptions options;
  options.timeline_actor_type = "Nobody";
  options.timeline_mission_type = "Nothing";
  std::string html = RenderHtmlReport(MakeArchive(), options);
  EXPECT_EQ(html.find("Nobody timeline"), std::string::npos);
}

TEST(ReportTest, TreeDepthRespected) {
  ReportOptions shallow;
  shallow.tree_depth = 2;
  std::string html = RenderHtmlReport(MakeArchive(), shallow);
  EXPECT_EQ(html.find("LocalSuperstep-1"), std::string::npos);
  ReportOptions deep;
  deep.tree_depth = 0;
  html = RenderHtmlReport(MakeArchive(), deep);
  EXPECT_NE(html.find("LocalSuperstep-1"), std::string::npos);
}

TEST(ReportTest, WriteToFile) {
  std::string path = testing::TempDir() + "/report.html";
  ASSERT_TRUE(WriteHtmlReport(MakeArchive(), ReportOptions{}, path).ok());
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  EXPECT_FALSE(
      WriteHtmlReport(MakeArchive(), ReportOptions{}, "/no/dir/x.html")
          .ok());
}

TEST(ReportTest, EmptyArchiveDegrades) {
  PerformanceArchive empty;
  std::string html = RenderHtmlReport(empty, ReportOptions{});
  EXPECT_NE(html.find("</html>"), std::string::npos);
}

}  // namespace
}  // namespace granula::core
