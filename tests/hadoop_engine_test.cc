// Correctness and structure tests for the Hadoop/MapReduce engine: the
// Pregel-on-MapReduce encoding must compute exactly the reference values,
// and its archives must show the structural signature of the paper's
// "severe performance penalty" claim (per-iteration provisioning + full
// state rewrites).

#include <gtest/gtest.h>

#include "algorithms/reference.h"
#include "granula/archive/archiver.h"
#include "granula/models/models.h"
#include "graph/generators.h"
#include "platforms/giraph.h"
#include "platforms/hadoop.h"

namespace granula::platform {
namespace {

cluster::ClusterConfig FastCluster() {
  cluster::ClusterConfig config;
  config.num_nodes = 4;
  return config;
}

JobConfig FastJob() {
  JobConfig config;
  config.num_workers = 4;
  return config;
}

class HadoopVsReference : public ::testing::TestWithParam<int> {};

constexpr algo::AlgorithmId kAlgorithms[] = {
    algo::AlgorithmId::kBfs, algo::AlgorithmId::kSssp,
    algo::AlgorithmId::kWcc, algo::AlgorithmId::kPageRank,
    algo::AlgorithmId::kCdlp};

TEST_P(HadoopVsReference, MatchesReferenceOnDatagen) {
  algo::AlgorithmId id = kAlgorithms[GetParam()];
  graph::DatagenConfig config;
  config.num_vertices = 500;
  config.avg_degree = 8.0;
  config.seed = 21;
  auto g = graph::GenerateDatagen(config);
  ASSERT_TRUE(g.ok());

  algo::AlgorithmSpec spec;
  spec.id = id;
  spec.source = 0;
  spec.max_iterations = 5;
  auto expected = algo::RunReference(*g, spec);
  ASSERT_TRUE(expected.ok());

  HadoopPlatform hadoop;
  auto result = hadoop.Run(*g, spec, FastCluster(), FastJob());
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->vertex_values.size(), expected->size());
  for (size_t v = 0; v < expected->size(); ++v) {
    if (id == algo::AlgorithmId::kPageRank) {
      EXPECT_NEAR(result->vertex_values[v], (*expected)[v], 1e-9) << v;
    } else {
      EXPECT_DOUBLE_EQ(result->vertex_values[v], (*expected)[v]) << v;
    }
  }
}

std::string HadoopCaseName(const ::testing::TestParamInfo<int>& info) {
  static const char* kNames[] = {"Bfs", "Sssp", "Wcc", "PageRank", "Cdlp"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, HadoopVsReference,
                         ::testing::Range(0, 5), HadoopCaseName);

TEST(HadoopEngineTest, SameAnswerAsGiraph) {
  auto g = graph::GenerateUniform(400, 1200, 3);
  ASSERT_TRUE(g.ok());
  algo::AlgorithmSpec spec;
  spec.id = algo::AlgorithmId::kBfs;
  spec.source = 2;
  HadoopPlatform hadoop;
  GiraphPlatform giraph;
  auto h = hadoop.Run(*g, spec, FastCluster(), FastJob());
  auto gr = giraph.Run(*g, spec, FastCluster(), FastJob());
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(gr.ok());
  EXPECT_EQ(h->vertex_values, gr->vertex_values);
  EXPECT_EQ(h->supersteps, gr->supersteps);
}

TEST(HadoopEngineTest, ArchiveHasOneMrJobPerIteration) {
  graph::DatagenConfig config;
  config.num_vertices = 2000;
  config.seed = 8;
  auto g = graph::GenerateDatagen(config);
  ASSERT_TRUE(g.ok());
  algo::AlgorithmSpec spec;
  spec.id = algo::AlgorithmId::kBfs;
  spec.source = 1;
  HadoopPlatform hadoop;
  auto result = hadoop.Run(*g, spec, cluster::ClusterConfig{}, JobConfig{});
  ASSERT_TRUE(result.ok());
  auto archive = core::Archiver().Build(core::MakeHadoopModel(),
                                        result->records,
                                        std::move(result->environment), {});
  ASSERT_TRUE(archive.ok()) << archive.status();

  auto jobs = archive->FindOperations("Master", "MrJob");
  EXPECT_EQ(jobs.size(), result->supersteps);
  for (const core::ArchivedOperation* job : jobs) {
    // Every iteration pays setup, map, shuffle, reduce, commit.
    EXPECT_EQ(job->children.size(), 5u);
    EXPECT_GT(job->InfoNumber("SetupTime"), 0.0);
  }
  // Per-iteration provisioning: total MrJob setup dwarfs the one-time
  // Startup phase.
  double setup_total = 0;
  for (const core::ArchivedOperation* job : jobs) {
    setup_total += job->InfoNumber("SetupTime") * 1e-9;
  }
  const core::ArchivedOperation* startup =
      archive->FindByPath("HadoopJob/Startup");
  ASSERT_NE(startup, nullptr);
  EXPECT_GT(setup_total, 3.0 * startup->Duration().seconds());
}

TEST(HadoopEngineTest, ProcessingPenaltyVsGiraph) {
  graph::DatagenConfig config;
  config.num_vertices = 5000;
  config.avg_degree = 10.0;
  config.seed = 4;
  auto g = graph::GenerateDatagen(config);
  ASSERT_TRUE(g.ok());
  algo::AlgorithmSpec spec;
  spec.id = algo::AlgorithmId::kBfs;
  spec.source = 1;
  HadoopPlatform hadoop;
  GiraphPlatform giraph;
  auto h = hadoop.Run(*g, spec, cluster::ClusterConfig{}, JobConfig{});
  auto gr = giraph.Run(*g, spec, cluster::ClusterConfig{}, JobConfig{});
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(gr.ok());

  core::PerformanceModel domain = core::MakeGraphProcessingDomainModel();
  auto ha = core::Archiver().Build(domain, h->records, {}, {});
  auto ga = core::Archiver().Build(domain, gr->records, {}, {});
  ASSERT_TRUE(ha.ok());
  ASSERT_TRUE(ga.ok());
  double hadoop_tp = ha->root->InfoNumber("ProcessingTime");
  double giraph_tp = ga->root->InfoNumber("ProcessingTime");
  // The intro's claim, measurable through the shared domain model: the
  // general-purpose platform pays a large multiple on processing.
  EXPECT_GT(hadoop_tp, 5.0 * giraph_tp);
}

TEST(HadoopEngineTest, RejectsBadConfigs) {
  graph::Graph g = graph::MakePath(10);
  algo::AlgorithmSpec spec;
  spec.id = algo::AlgorithmId::kBfs;
  HadoopPlatform hadoop;
  JobConfig zero;
  zero.num_workers = 0;
  EXPECT_FALSE(hadoop.Run(g, spec, FastCluster(), zero).ok());
  spec.id = algo::AlgorithmId::kLcc;
  EXPECT_EQ(hadoop.Run(g, spec, FastCluster(), FastJob()).status().code(),
            StatusCode::kUnimplemented);
}

TEST(HadoopEngineTest, Deterministic) {
  auto g = graph::GenerateUniform(300, 900, 5);
  ASSERT_TRUE(g.ok());
  algo::AlgorithmSpec spec;
  spec.id = algo::AlgorithmId::kWcc;
  HadoopPlatform hadoop;
  auto a = hadoop.Run(*g, spec, FastCluster(), FastJob());
  auto b = hadoop.Run(*g, spec, FastCluster(), FastJob());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->total_seconds, b->total_seconds);
  EXPECT_EQ(a->records.size(), b->records.size());
}

}  // namespace
}  // namespace granula::platform
