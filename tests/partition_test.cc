#include "graph/partition.h"

#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace granula::graph {
namespace {

TEST(EdgeCutTest, EveryVertexOwnedExactlyOnce) {
  Graph g = MakeGrid(10, 10);
  auto r = PartitionEdgeCut(g, 4);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->partitions.size(), 4u);
  std::set<VertexId> seen;
  for (const auto& p : r->partitions) {
    for (VertexId v : p.vertices) {
      EXPECT_TRUE(seen.insert(v).second) << "vertex owned twice: " << v;
    }
  }
  EXPECT_EQ(seen.size(), g.num_vertices());
}

TEST(EdgeCutTest, EveryEdgeAssignedToSrcOwner) {
  Graph g = MakeGrid(8, 8);
  auto r = PartitionEdgeCut(g, 3);
  ASSERT_TRUE(r.ok());
  uint64_t total_edges = 0;
  for (uint32_t p = 0; p < 3; ++p) {
    for (const Edge& e : r->partitions[p].edges) {
      EXPECT_EQ(r->owner[e.src], p);
      ++total_edges;
    }
  }
  EXPECT_EQ(total_edges, g.num_edges());
}

TEST(EdgeCutTest, CutEdgesCountedCorrectly) {
  Graph g = MakePath(10);
  auto r = PartitionEdgeCut(g, 2);
  ASSERT_TRUE(r.ok());
  uint64_t expected_cut = 0;
  for (const Edge& e : g.edges()) {
    if (r->owner[e.src] != r->owner[e.dst]) ++expected_cut;
  }
  EXPECT_EQ(r->cut_edges, expected_cut);
  EXPECT_LE(r->CutFraction(g.num_edges()), 1.0);
}

TEST(EdgeCutTest, SinglePartitionHasNoCut) {
  auto graph = GenerateUniform(200, 1000, 9);
  ASSERT_TRUE(graph.ok());
  auto r = PartitionEdgeCut(*graph, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->cut_edges, 0u);
  EXPECT_EQ(r->partitions[0].vertices.size(), 200u);
}

TEST(EdgeCutTest, RoughlyBalanced) {
  auto graph = GenerateUniform(8000, 16000, 21);
  ASSERT_TRUE(graph.ok());
  auto r = PartitionEdgeCut(*graph, 8);
  ASSERT_TRUE(r.ok());
  for (const auto& p : r->partitions) {
    EXPECT_NEAR(static_cast<double>(p.vertices.size()), 1000.0, 150.0);
  }
}

TEST(EdgeCutTest, ZeroPartitionsRejected) {
  Graph g = MakePath(3);
  EXPECT_FALSE(PartitionEdgeCut(g, 0).ok());
}

void CheckVertexCutInvariants(const Graph& g, const VertexCutResult& r,
                              uint32_t k) {
  // Every edge exactly once.
  uint64_t total_edges = 0;
  for (const auto& p : r.partitions) total_edges += p.edges.size();
  EXPECT_EQ(total_edges, g.num_edges());

  // Replicas cover every endpoint of every local edge.
  for (const auto& p : r.partitions) {
    std::set<VertexId> replicas(p.replicas.begin(), p.replicas.end());
    EXPECT_EQ(replicas.size(), p.replicas.size()) << "duplicate replica";
    for (const Edge& e : p.edges) {
      EXPECT_TRUE(replicas.count(e.src)) << "missing src replica";
      EXPECT_TRUE(replicas.count(e.dst)) << "missing dst replica";
    }
  }

  // Every vertex has a master, and the master partition holds a replica.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_LT(r.master[v], k);
    const auto& p = r.partitions[r.master[v]];
    EXPECT_TRUE(std::find(p.replicas.begin(), p.replicas.end(), v) !=
                p.replicas.end());
  }

  // total_replicas is consistent.
  uint64_t count = 0;
  for (const auto& p : r.partitions) count += p.replicas.size();
  EXPECT_EQ(count, r.total_replicas);
  EXPECT_GE(r.ReplicationFactor(g.num_vertices()), 1.0);
}

TEST(VertexCutTest, GreedyInvariants) {
  auto graph = GenerateUniform(500, 3000, 17);
  ASSERT_TRUE(graph.ok());
  auto r = PartitionVertexCutGreedy(*graph, 4);
  ASSERT_TRUE(r.ok());
  CheckVertexCutInvariants(*graph, *r, 4);
}

TEST(VertexCutTest, RandomInvariants) {
  auto graph = GenerateUniform(500, 3000, 17);
  ASSERT_TRUE(graph.ok());
  auto r = PartitionVertexCutRandom(*graph, 4, 99);
  ASSERT_TRUE(r.ok());
  CheckVertexCutInvariants(*graph, *r, 4);
}

TEST(VertexCutTest, GreedyBeatsRandomOnReplication) {
  DatagenConfig config;
  config.num_vertices = 3000;
  config.avg_degree = 10.0;
  config.seed = 5;
  auto graph = GenerateDatagen(config);
  ASSERT_TRUE(graph.ok());
  auto greedy = PartitionVertexCutGreedy(*graph, 8);
  auto random = PartitionVertexCutRandom(*graph, 8, 1);
  ASSERT_TRUE(greedy.ok());
  ASSERT_TRUE(random.ok());
  // The PowerGraph paper's core claim for its greedy heuristic.
  EXPECT_LT(greedy->ReplicationFactor(graph->num_vertices()),
            random->ReplicationFactor(graph->num_vertices()));
}

TEST(VertexCutTest, IsolatedVerticesGetMasters) {
  auto g = Graph::Create(5, {{0, 1}}, false);
  ASSERT_TRUE(g.ok());
  auto r = PartitionVertexCutGreedy(*g, 2);
  ASSERT_TRUE(r.ok());
  CheckVertexCutInvariants(*g, *r, 2);
}

TEST(VertexCutTest, GreedyKeepsLoadBalanced) {
  auto graph = GenerateUniform(2000, 12000, 23);
  ASSERT_TRUE(graph.ok());
  auto r = PartitionVertexCutGreedy(*graph, 6);
  ASSERT_TRUE(r.ok());
  uint64_t min_load = UINT64_MAX, max_load = 0;
  for (const auto& p : r->partitions) {
    min_load = std::min<uint64_t>(min_load, p.edges.size());
    max_load = std::max<uint64_t>(max_load, p.edges.size());
  }
  EXPECT_LT(static_cast<double>(max_load),
            1.5 * static_cast<double>(min_load) + 16.0);
}

TEST(VertexCutTest, ZeroPartitionsRejected) {
  Graph g = MakePath(3);
  EXPECT_FALSE(PartitionVertexCutGreedy(g, 0).ok());
  EXPECT_FALSE(PartitionVertexCutRandom(g, 0, 0).ok());
}

}  // namespace
}  // namespace granula::graph
