#include "platforms/message_store.h"

#include <gtest/gtest.h>

namespace granula::platform {
namespace {

TEST(MessageStoreTest, NoCombinerKeepsAllMessages) {
  MessageStore store(4, algo::Combiner::kNone);
  store.Deliver(1, 3.0);
  store.Deliver(1, 5.0);
  store.Deliver(2, 7.0);
  EXPECT_FALSE(store.HasCurrent(1));  // still in the "next" buffer
  EXPECT_EQ(store.pending_total(), 3u);
  store.Swap();
  ASSERT_TRUE(store.HasCurrent(1));
  auto messages = store.CurrentMessages(1);
  ASSERT_EQ(messages.size(), 2u);
  EXPECT_DOUBLE_EQ(messages[0], 3.0);
  EXPECT_DOUBLE_EQ(messages[1], 5.0);
  EXPECT_EQ(store.CurrentDeliveryCount(1), 2u);
  EXPECT_EQ(store.CurrentMessages(2).size(), 1u);
  EXPECT_TRUE(store.CurrentMessages(0).empty());
  EXPECT_FALSE(store.HasCurrent(3));
}

TEST(MessageStoreTest, MinCombinerCollapsesButCounts) {
  MessageStore store(2, algo::Combiner::kMin);
  store.Deliver(0, 9.0);
  store.Deliver(0, 4.0);
  store.Deliver(0, 6.0);
  store.Swap();
  auto messages = store.CurrentMessages(0);
  ASSERT_EQ(messages.size(), 1u);
  EXPECT_DOUBLE_EQ(messages[0], 4.0);
  EXPECT_EQ(store.CurrentDeliveryCount(0), 3u);  // pre-combine count
}

TEST(MessageStoreTest, MaxAndSumCombiners) {
  MessageStore max_store(1, algo::Combiner::kMax);
  max_store.Deliver(0, 1.0);
  max_store.Deliver(0, 8.0);
  max_store.Swap();
  EXPECT_DOUBLE_EQ(max_store.CurrentMessages(0)[0], 8.0);

  MessageStore sum_store(1, algo::Combiner::kSum);
  sum_store.Deliver(0, 1.5);
  sum_store.Deliver(0, 2.5);
  sum_store.Swap();
  EXPECT_DOUBLE_EQ(sum_store.CurrentMessages(0)[0], 4.0);
}

TEST(MessageStoreTest, SwapClearsNextBuffer) {
  MessageStore store(2, algo::Combiner::kMin);
  store.Deliver(0, 1.0);
  store.Swap();
  EXPECT_TRUE(store.HasCurrent(0));
  EXPECT_EQ(store.pending_total(), 0u);
  store.Swap();  // nothing pending: current becomes empty
  EXPECT_FALSE(store.HasCurrent(0));
}

TEST(MessageStoreTest, DeliveriesDuringSuperstepGoToNext) {
  MessageStore store(2, algo::Combiner::kNone);
  store.Deliver(0, 1.0);
  store.Swap();
  // "Superstep": read current, deliver new.
  EXPECT_TRUE(store.HasCurrent(0));
  store.Deliver(0, 2.0);
  EXPECT_EQ(store.CurrentMessages(0).size(), 1u);  // unchanged this step
  store.Swap();
  ASSERT_EQ(store.CurrentMessages(0).size(), 1u);
  EXPECT_DOUBLE_EQ(store.CurrentMessages(0)[0], 2.0);
}

TEST(MessageStoreTest, PendingTotalTracksAllTargets) {
  MessageStore store(8, algo::Combiner::kSum);
  for (graph::VertexId v = 0; v < 8; ++v) store.Deliver(v, 1.0);
  EXPECT_EQ(store.pending_total(), 8u);
  store.Swap();
  EXPECT_EQ(store.pending_total(), 0u);
}

}  // namespace
}  // namespace granula::platform
