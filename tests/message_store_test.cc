#include "platforms/message_store.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace granula::platform {
namespace {

TEST(MessageStoreTest, NoCombinerKeepsAllMessages) {
  MessageStore store(4, algo::Combiner::kNone);
  store.Deliver(1, 3.0);
  store.Deliver(1, 5.0);
  store.Deliver(2, 7.0);
  EXPECT_FALSE(store.HasCurrent(1));  // still in the "next" buffer
  EXPECT_EQ(store.pending_total(), 3u);
  store.Swap();
  ASSERT_TRUE(store.HasCurrent(1));
  auto messages = store.CurrentMessages(1);
  ASSERT_EQ(messages.size(), 2u);
  EXPECT_DOUBLE_EQ(messages[0], 3.0);
  EXPECT_DOUBLE_EQ(messages[1], 5.0);
  EXPECT_EQ(store.CurrentDeliveryCount(1), 2u);
  EXPECT_EQ(store.CurrentMessages(2).size(), 1u);
  EXPECT_TRUE(store.CurrentMessages(0).empty());
  EXPECT_FALSE(store.HasCurrent(3));
}

TEST(MessageStoreTest, MinCombinerCollapsesButCounts) {
  MessageStore store(2, algo::Combiner::kMin);
  store.Deliver(0, 9.0);
  store.Deliver(0, 4.0);
  store.Deliver(0, 6.0);
  store.Swap();
  auto messages = store.CurrentMessages(0);
  ASSERT_EQ(messages.size(), 1u);
  EXPECT_DOUBLE_EQ(messages[0], 4.0);
  EXPECT_EQ(store.CurrentDeliveryCount(0), 3u);  // pre-combine count
}

TEST(MessageStoreTest, MaxAndSumCombiners) {
  MessageStore max_store(1, algo::Combiner::kMax);
  max_store.Deliver(0, 1.0);
  max_store.Deliver(0, 8.0);
  max_store.Swap();
  EXPECT_DOUBLE_EQ(max_store.CurrentMessages(0)[0], 8.0);

  MessageStore sum_store(1, algo::Combiner::kSum);
  sum_store.Deliver(0, 1.5);
  sum_store.Deliver(0, 2.5);
  sum_store.Swap();
  EXPECT_DOUBLE_EQ(sum_store.CurrentMessages(0)[0], 4.0);
}

TEST(MessageStoreTest, SwapClearsNextBuffer) {
  MessageStore store(2, algo::Combiner::kMin);
  store.Deliver(0, 1.0);
  store.Swap();
  EXPECT_TRUE(store.HasCurrent(0));
  EXPECT_EQ(store.pending_total(), 0u);
  store.Swap();  // nothing pending: current becomes empty
  EXPECT_FALSE(store.HasCurrent(0));
}

TEST(MessageStoreTest, DeliveriesDuringSuperstepGoToNext) {
  MessageStore store(2, algo::Combiner::kNone);
  store.Deliver(0, 1.0);
  store.Swap();
  // "Superstep": read current, deliver new.
  EXPECT_TRUE(store.HasCurrent(0));
  store.Deliver(0, 2.0);
  EXPECT_EQ(store.CurrentMessages(0).size(), 1u);  // unchanged this step
  store.Swap();
  ASSERT_EQ(store.CurrentMessages(0).size(), 1u);
  EXPECT_DOUBLE_EQ(store.CurrentMessages(0)[0], 2.0);
}

TEST(MessageStoreTest, PendingTotalTracksAllTargets) {
  MessageStore store(8, algo::Combiner::kSum);
  for (graph::VertexId v = 0; v < 8; ++v) store.Deliver(v, 1.0);
  EXPECT_EQ(store.pending_total(), 8u);
  store.Swap();
  EXPECT_EQ(store.pending_total(), 0u);
}

// Serializes the full current-superstep view of a store for byte-compare.
std::string Snapshot(const MessageStore& store, uint64_t num_vertices) {
  std::string out;
  for (graph::VertexId v = 0; v < num_vertices; ++v) {
    out += std::to_string(v) + ":" +
           std::to_string(store.CurrentDeliveryCount(v)) + "[";
    for (double m : store.CurrentMessages(v)) {
      out += std::to_string(m) + ",";
    }
    out += "]\n";
  }
  return out;
}

TEST(MessageStoreTest, ShardedMergeMatchesSequentialDelivery) {
  // The same deliveries, once through shard 0 in sequential order and once
  // split across shards (chunks of the iteration), must merge to the same
  // per-vertex message sequences — the determinism contract of Swap().
  constexpr uint64_t kVertices = 300;
  for (algo::Combiner combiner :
       {algo::Combiner::kNone, algo::Combiner::kMin, algo::Combiner::kSum}) {
    MessageStore sequential(kVertices, combiner);
    MessageStore sharded(kVertices, combiner);
    uint64_t first = sharded.AddShards(4);
    EXPECT_EQ(first, 1u);  // shard 0 pre-exists for sequential delivery

    // Sender s emits to (s * 7 + k) % kVertices for k = 0..2; the sharded
    // store splits senders into 4 contiguous chunks like ParallelFor does.
    for (uint64_t s = 0; s < 200; ++s) {
      for (uint64_t k = 0; k < 3; ++k) {
        sequential.Deliver((s * 7 + k) % kVertices, 1.0 + s + 0.5 * k);
      }
    }
    for (uint64_t s = 0; s < 200; ++s) {
      uint64_t shard = first + s / 50;  // chunk index in iteration order
      for (uint64_t k = 0; k < 3; ++k) {
        sharded.Deliver(shard, (s * 7 + k) % kVertices, 1.0 + s + 0.5 * k);
      }
    }
    EXPECT_EQ(sequential.pending_total(), sharded.pending_total());
    sequential.Swap();
    sharded.Swap();
    EXPECT_EQ(Snapshot(sequential, kVertices), Snapshot(sharded, kVertices));
    EXPECT_EQ(sequential.current_total(), sharded.current_total());
  }
}

TEST(MessageStoreTest, ShardSlotsRecycleAcrossSupersteps) {
  MessageStore store(16, algo::Combiner::kNone);
  EXPECT_EQ(store.AddShards(3), 1u);
  store.Deliver(2, 5, 1.0);
  store.Swap();
  // After Swap the region's shards are released; the next region gets the
  // same slots back.
  EXPECT_EQ(store.AddShards(2), 1u);
  store.Deliver(1, 5, 2.0);
  store.Swap();
  ASSERT_EQ(store.CurrentMessages(5).size(), 1u);
  EXPECT_DOUBLE_EQ(store.CurrentMessages(5)[0], 2.0);
}

TEST(MessageStoreTest, PartitionCountsTrackCurrentDeliveries) {
  // owner: vertices 0-3 -> partition 0, 4-7 -> partition 1.
  std::vector<uint32_t> owner = {0, 0, 0, 0, 1, 1, 1, 1};
  MessageStore store(8, algo::Combiner::kMin);
  store.SetOwners(&owner, 2);
  store.Deliver(1, 1.0);
  store.Deliver(1, 2.0);
  store.Deliver(6, 3.0);
  EXPECT_EQ(store.CurrentPartitionCount(0), 0u);  // still pending
  store.Swap();
  EXPECT_EQ(store.CurrentPartitionCount(0), 2u);
  EXPECT_EQ(store.CurrentPartitionCount(1), 1u);
  EXPECT_EQ(store.current_total(), 3u);
  store.Swap();
  EXPECT_EQ(store.CurrentPartitionCount(0), 0u);
  EXPECT_EQ(store.CurrentPartitionCount(1), 0u);
}

TEST(MessageStoreTest, ResidentBytesBoundedAfterBurst) {
  // Satellite fix: a high-water superstep must not pin its capacity. After
  // one burst of ~200k messages, later small supersteps must run with
  // resident message storage back near the retention cap, not at the
  // burst's high-water mark.
  constexpr uint64_t kVertices = 4096;
  MessageStore store(kVertices, algo::Combiner::kNone);
  // Concentrate the burst on a small vertex range so the per-vector cap is
  // what bounds residency, not even spreading.
  for (uint64_t i = 0; i < 200'000; ++i) {
    store.Deliver(i % 64, static_cast<double>(i));
  }
  store.Swap();
  uint64_t high_water = store.ResidentBytes();
  EXPECT_GT(high_water, 1'000'000u);  // the burst really was big

  for (int step = 0; step < 3; ++step) {
    for (uint64_t i = 0; i < 100; ++i) store.Deliver(i, 1.0);
    store.Swap();
  }
  // Swap releases capacity above kRetainBytes (64 KiB) per vector; with a
  // couple of buckets in play the steady-state residency must be orders of
  // magnitude below the burst.
  EXPECT_LT(store.ResidentBytes(), high_water / 10);
  EXPECT_LT(store.ResidentBytes(), 512u * 1024u);
}

}  // namespace
}  // namespace granula::platform
