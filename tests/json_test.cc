#include "common/json.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>

#include <gtest/gtest.h>

namespace granula {
namespace {

// The tagged-union rework exists to shrink the per-node footprint; the
// archive and log-ingest paths size their memory plans around this.
static_assert(sizeof(Json) <= 48, "Json value must stay compact");

TEST(JsonTest, TypePredicates) {
  EXPECT_TRUE(Json().is_null());
  EXPECT_TRUE(Json(true).is_bool());
  EXPECT_TRUE(Json(int64_t{42}).is_int());
  EXPECT_TRUE(Json(3.14).is_double());
  EXPECT_TRUE(Json("hi").is_string());
  EXPECT_TRUE(Json::MakeArray().is_array());
  EXPECT_TRUE(Json::MakeObject().is_object());
  EXPECT_TRUE(Json(int64_t{1}).is_number());
  EXPECT_TRUE(Json(1.0).is_number());
}

TEST(JsonTest, DumpScalars) {
  EXPECT_EQ(Json().Dump(), "null");
  EXPECT_EQ(Json(true).Dump(), "true");
  EXPECT_EQ(Json(false).Dump(), "false");
  EXPECT_EQ(Json(int64_t{-7}).Dump(), "-7");
  EXPECT_EQ(Json("a\"b").Dump(), "\"a\\\"b\"");
  EXPECT_EQ(Json(0.5).Dump(), "0.5");
}

TEST(JsonTest, DoubleAlwaysReparsesAsDouble) {
  EXPECT_EQ(Json(2.0).Dump(), "2.0");
  auto parsed = Json::Parse("2.0");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->is_double());
}

TEST(JsonTest, ObjectBuildAndFind) {
  Json obj;
  obj["name"] = "bfs";
  obj["nodes"] = int64_t{8};
  obj["ratio"] = 0.25;
  EXPECT_TRUE(obj.is_object());
  EXPECT_EQ(obj.GetString("name"), "bfs");
  EXPECT_EQ(obj.GetInt("nodes"), 8);
  EXPECT_DOUBLE_EQ(obj.GetDouble("ratio"), 0.25);
  EXPECT_EQ(obj.Find("missing"), nullptr);
  EXPECT_EQ(obj.GetString("missing", "dflt"), "dflt");
  EXPECT_EQ(obj.GetInt("missing", -1), -1);
}

TEST(JsonTest, ArrayAppend) {
  Json arr;
  arr.Append(int64_t{1});
  arr.Append("two");
  arr.Append(Json::MakeObject());
  EXPECT_TRUE(arr.is_array());
  EXPECT_EQ(arr.size(), 3u);
  EXPECT_EQ(arr.Dump(), "[1,\"two\",{}]");
}

TEST(JsonTest, ObjectKeysSortedDeterministically) {
  Json obj;
  obj["zebra"] = int64_t{1};
  obj["alpha"] = int64_t{2};
  EXPECT_EQ(obj.Dump(), "{\"alpha\":2,\"zebra\":1}");
}

TEST(JsonTest, PrettyPrint) {
  Json obj;
  obj["a"] = int64_t{1};
  EXPECT_EQ(obj.Dump(2), "{\n  \"a\": 1\n}");
}

TEST(JsonTest, ParseScalars) {
  EXPECT_TRUE(Json::Parse("null")->is_null());
  EXPECT_EQ(Json::Parse("true")->AsBool(), true);
  EXPECT_EQ(Json::Parse("-42")->AsInt(), -42);
  EXPECT_DOUBLE_EQ(Json::Parse("2.5e3")->AsDouble(), 2500.0);
  EXPECT_EQ(Json::Parse("\"hi\"")->AsString(), "hi");
}

TEST(JsonTest, ParseNested) {
  auto r = Json::Parse(R"({"a": [1, {"b": null}], "c": "x"})");
  ASSERT_TRUE(r.ok());
  const Json& v = *r;
  ASSERT_NE(v.Find("a"), nullptr);
  EXPECT_EQ(v.Find("a")->AsArray()[0].AsInt(), 1);
  EXPECT_TRUE(v.Find("a")->AsArray()[1].Find("b")->is_null());
  EXPECT_EQ(v.GetString("c"), "x");
}

TEST(JsonTest, ParseRejectsGarbage) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":}").ok());
  EXPECT_FALSE(Json::Parse("tru").ok());
  EXPECT_FALSE(Json::Parse("1 2").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
  EXPECT_FALSE(Json::Parse("nan").ok());
}

TEST(JsonTest, ParseStringEscapes) {
  auto r = Json::Parse(R"("a\n\t\"\\A")");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->AsString(), "a\n\t\"\\A");
}

TEST(JsonTest, ParseUnicodeEscapes) {
  // U+00E9 (é), U+4E2D (中), and a surrogate pair for U+1F600.
  auto r = Json::Parse(R"(["é", "中", "😀"])");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->AsArray()[0].AsString(), "\xc3\xa9");
  EXPECT_EQ(r->AsArray()[1].AsString(), "\xe4\xb8\xad");
  EXPECT_EQ(r->AsArray()[2].AsString(), "\xf0\x9f\x98\x80");
}

TEST(JsonTest, UnpairedSurrogateBecomesReplacementChar) {
  // An unpaired UTF-16 surrogate in a \u escape cannot be encoded as
  // UTF-8; it decodes to U+FFFD (EF BF BD) instead of invalid bytes.
  auto lone_high = Json::Parse(R"("a\ud800b")");
  ASSERT_TRUE(lone_high.ok());
  EXPECT_EQ(lone_high->AsString(), "a\xef\xbf\xbd"  "b");

  auto lone_low = Json::Parse(R"("a\udc00b")");
  ASSERT_TRUE(lone_low.ok());
  EXPECT_EQ(lone_low->AsString(), "a\xef\xbf\xbd"  "b");

  // A high surrogate followed by a non-surrogate escape: the high decodes
  // to U+FFFD and the next escape decodes on its own.
  auto high_then_bmp = Json::Parse(R"("\ud800A")");
  ASSERT_TRUE(high_then_bmp.ok());
  EXPECT_EQ(high_then_bmp->AsString(), "\xef\xbf\xbd" "A");

  // A high surrogate at end of string.
  auto high_at_end = Json::Parse(R"("\ud800")");
  ASSERT_TRUE(high_at_end.ok());
  EXPECT_EQ(high_at_end->AsString(), "\xef\xbf\xbd");

  // Valid escaped pairs still combine.
  auto pair = Json::Parse(R"("\ud83d\ude00")");
  ASSERT_TRUE(pair.ok());
  EXPECT_EQ(pair->AsString(), "\xf0\x9f\x98\x80");

  // The replacement character survives a dump/parse round-trip.
  auto redumped = Json::Parse(lone_high->Dump(0));
  ASSERT_TRUE(redumped.ok());
  EXPECT_EQ(*redumped, *lone_high);
}

TEST(JsonTest, RoundtripComplexDocument) {
  Json doc;
  doc["job"] = "BFS";
  doc["t"] = 81.59;
  doc["n"] = int64_t{1030000000};
  Json ops = Json::MakeArray();
  for (int i = 0; i < 5; ++i) {
    Json op;
    op["id"] = int64_t{i};
    op["name"] = std::string("op") + std::to_string(i);
    op["frac"] = 0.2 * i;
    ops.Append(std::move(op));
  }
  doc["operations"] = std::move(ops);

  for (int indent : {0, 2, 4}) {
    auto parsed = Json::Parse(doc.Dump(indent));
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_EQ(*parsed, doc) << "indent=" << indent;
  }
}

TEST(JsonTest, RoundtripExtremeNumbers) {
  Json doc = Json::MakeArray();
  doc.Append(int64_t{INT64_MAX});
  doc.Append(int64_t{INT64_MIN + 1});
  doc.Append(1e-300);
  doc.Append(1.7976931348623157e308);
  doc.Append(0.1);
  auto parsed = Json::Parse(doc.Dump());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, doc);
}

TEST(JsonTest, EqualityIsDeep) {
  auto a = Json::Parse(R"({"x":[1,2,{"y":true}]})");
  auto b = Json::Parse(R"({"x":[1,2,{"y":true}]})");
  auto c = Json::Parse(R"({"x":[1,2,{"y":false}]})");
  EXPECT_EQ(*a, *b);
  EXPECT_FALSE(*a == *c);
}

TEST(JsonTest, Uint64AboveInt64MaxStoredAsDouble) {
  // Regression: these used to wrap negative via static_cast<int64_t>.
  // Precision past 2^53 is traded away, but sign and magnitude survive.
  Json small(uint64_t{7});
  EXPECT_TRUE(small.is_int());
  EXPECT_EQ(small.AsInt(), 7);

  Json exact(static_cast<uint64_t>(INT64_MAX));
  EXPECT_TRUE(exact.is_int());
  EXPECT_EQ(exact.AsInt(), INT64_MAX);

  Json big(static_cast<uint64_t>(INT64_MAX) + 1);  // 2^63
  EXPECT_TRUE(big.is_double());
  EXPECT_DOUBLE_EQ(big.AsDouble(), 9223372036854775808.0);
  EXPECT_GT(big.AsDouble(), 0.0);

  Json max(UINT64_MAX);
  EXPECT_TRUE(max.is_double());
  EXPECT_DOUBLE_EQ(max.AsDouble(), 18446744073709551616.0);

  // The double representation still roundtrips through text.
  auto parsed = Json::Parse(max.Dump(0));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, max);
}

TEST(JsonTest, AsIntSaturatesOutOfRangeDoubles) {
  // Regression: the raw static_cast was UB for doubles outside int64.
  EXPECT_EQ(Json(1e300).AsInt(), INT64_MAX);
  EXPECT_EQ(Json(-1e300).AsInt(), INT64_MIN);
  EXPECT_EQ(Json(9223372036854775808.0).AsInt(), INT64_MAX);
  EXPECT_EQ(Json(-9223372036854775808.0).AsInt(), INT64_MIN);
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).AsInt(),
            INT64_MAX);
  EXPECT_EQ(Json(-std::numeric_limits<double>::infinity()).AsInt(),
            INT64_MIN);
  EXPECT_EQ(Json(std::nan("")).AsInt(), 0);
  // In-range doubles still truncate toward zero.
  EXPECT_EQ(Json(3.9).AsInt(), 3);
  EXPECT_EQ(Json(-3.9).AsInt(), -3);
}

TEST(JsonTest, CopyIsDeepAndMoveLeavesNull) {
  Json doc;
  doc["outer"]["inner"] = int64_t{1};
  doc["list"].Append("x");

  Json copy = doc;
  copy["outer"]["inner"] = int64_t{2};
  EXPECT_EQ(doc["outer"].GetInt("inner"), 1);
  EXPECT_EQ(copy["outer"].GetInt("inner"), 2);

  Json moved = std::move(copy);
  EXPECT_TRUE(copy.is_null());  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(moved["outer"].GetInt("inner"), 2);
}

TEST(JsonTest, AssignmentFromOwnDescendantIsSafe) {
  Json doc;
  doc["child"]["x"] = int64_t{1};
  doc = doc["child"];  // `other` lives inside *this
  EXPECT_EQ(doc.GetInt("x"), 1);
}

TEST(JsonTest, MismatchedAccessorsReturnEmpty) {
  const Json num(int64_t{3});
  EXPECT_EQ(num.AsString(), "");
  EXPECT_TRUE(num.AsArray().empty());
  EXPECT_TRUE(num.AsObject().empty());
  EXPECT_FALSE(num.AsBool());
  EXPECT_EQ(Json("str").AsInt(), 0);
  EXPECT_DOUBLE_EQ(Json("str").AsDouble(), 0.0);
}

TEST(JsonTest, DeepNestingWithinLimitParses) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  deep += "1";
  for (int i = 0; i < 100; ++i) deep += ']';
  EXPECT_TRUE(Json::Parse(deep).ok());
}

TEST(JsonTest, ExcessiveNestingRejected) {
  std::string deep;
  for (int i = 0; i < 1000; ++i) deep += '[';
  deep += "1";
  for (int i = 0; i < 1000; ++i) deep += ']';
  EXPECT_FALSE(Json::Parse(deep).ok());
}

}  // namespace
}  // namespace granula
