// End-to-end checks of the analysis module against real platform runs:
// the automated detectors must reach the same conclusions the paper's
// authors reach by reading Figs. 5-8, and must localize injected faults.

#include <gtest/gtest.h>

#include "granula/analysis/chokepoint.h"
#include "granula/analysis/regression.h"
#include "granula/archive/archiver.h"
#include "granula/models/models.h"
#include "graph/generators.h"
#include "platforms/giraph.h"
#include "platforms/powergraph.h"

namespace granula::platform {
namespace {

graph::Graph TestGraph() {
  graph::DatagenConfig config;
  config.num_vertices = 8000;
  config.avg_degree = 10.0;
  config.seed = 77;
  return std::move(graph::GenerateDatagen(config)).value();
}

algo::AlgorithmSpec BfsSpec() {
  algo::AlgorithmSpec spec;
  spec.id = algo::AlgorithmId::kBfs;
  spec.source = 1;
  return spec;
}

core::PerformanceArchive RunGiraph(const cluster::ClusterConfig& cc) {
  GiraphPlatform giraph;
  auto result = giraph.Run(TestGraph(), BfsSpec(), cc, JobConfig{});
  EXPECT_TRUE(result.ok()) << result.status();
  auto archive = core::Archiver().Build(core::MakeGiraphModel(),
                                        result->records,
                                        std::move(result->environment), {});
  EXPECT_TRUE(archive.ok()) << archive.status();
  return std::move(archive).value();
}

core::ChokepointOptions DefaultOptions() {
  core::ChokepointOptions options;
  options.cluster_cpu_capacity = 8.0 * 16.0;
  return options;
}

bool HasFinding(const std::vector<core::Finding>& findings,
                core::FindingKind kind, const std::string& substring = "") {
  for (const core::Finding& f : findings) {
    if (f.kind == kind &&
        (substring.empty() ||
         f.description.find(substring) != std::string::npos)) {
      return true;
    }
  }
  return false;
}

TEST(FailureDiagnosisTest, HealthyGiraphFindsPaperConclusions) {
  auto findings =
      core::AnalyzeChokepoints(RunGiraph(cluster::ClusterConfig{}),
                               DefaultOptions());
  // Paper Section 4.3: setup phases are latency-bound, not CPU-bound.
  EXPECT_TRUE(
      HasFinding(findings, core::FindingKind::kIdleDuringPhase, "Startup"));
  // And no straggler exists on a homogeneous cluster.
  EXPECT_FALSE(HasFinding(findings, core::FindingKind::kStragglerNode));
}

TEST(FailureDiagnosisTest, InjectedSlowNodeIsLocalized) {
  cluster::ClusterConfig degraded;
  degraded.node_speed_factors = {1.0, 1.0, 1.0, 1.0, 1.0, 0.4, 1.0, 1.0};
  auto findings =
      core::AnalyzeChokepoints(RunGiraph(degraded), DefaultOptions());
  // Worker-5 runs on node 5 (containers are placed round-robin after the
  // master's node 0).
  EXPECT_TRUE(HasFinding(findings, core::FindingKind::kStragglerNode,
                         "Worker-5"));
}

TEST(FailureDiagnosisTest, RegressionGateFlagsDegradedRun) {
  core::PerformanceArchive baseline = RunGiraph(cluster::ClusterConfig{});
  cluster::ClusterConfig degraded;
  degraded.node_speed_factors = {1.0, 1.0, 0.4, 1.0, 1.0, 1.0, 1.0, 1.0};
  core::PerformanceArchive candidate = RunGiraph(degraded);

  core::RegressionOptions options;
  options.max_depth = 2;
  core::RegressionReport report =
      core::CompareArchives(baseline, candidate, options);
  ASSERT_TRUE(report.HasRegressions());
  bool process_flagged = false;
  for (const core::OperationDelta& delta : report.regressions) {
    if (delta.path == "GiraphJob/ProcessGraph") process_flagged = true;
  }
  EXPECT_TRUE(process_flagged);
  // Setup phases are latency-bound, not CPU-bound: they must NOT regress.
  for (const core::OperationDelta& delta : report.regressions) {
    EXPECT_NE(delta.path, "GiraphJob/Startup");
  }
}

TEST(FailureDiagnosisTest, IdenticalRunsPassTheRegressionGate) {
  core::PerformanceArchive a = RunGiraph(cluster::ClusterConfig{});
  core::PerformanceArchive b = RunGiraph(cluster::ClusterConfig{});
  core::RegressionReport report = core::CompareArchives(a, b, {});
  EXPECT_FALSE(report.HasRegressions());
  EXPECT_TRUE(report.improvements.empty());
  EXPECT_TRUE(report.added.empty());
  EXPECT_TRUE(report.removed.empty());
}

TEST(FailureDiagnosisTest, PowerGraphHotspotDetectedAutomatically) {
  PowerGraphPlatform powergraph;
  auto result = powergraph.Run(TestGraph(), BfsSpec(),
                               cluster::ClusterConfig{}, JobConfig{});
  ASSERT_TRUE(result.ok());
  auto archive = core::Archiver().Build(core::MakePowerGraphModel(),
                                        result->records,
                                        std::move(result->environment), {});
  ASSERT_TRUE(archive.ok());
  auto findings =
      core::AnalyzeChokepoints(*archive, DefaultOptions());
  // The Fig. 7 diagnosis, automated: LoadGraph dominates AND its CPU sits
  // on the coordinator node alone.
  EXPECT_TRUE(HasFinding(findings, core::FindingKind::kDominantPhase,
                         "LoadGraph"));
  EXPECT_TRUE(HasFinding(findings, core::FindingKind::kSingleNodeHotspot,
                         "node339"));
}

}  // namespace
}  // namespace granula::platform
