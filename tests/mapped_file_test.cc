// MappedFile is the shared byte-view substrate under JSONL ingest, the
// live tailer, and GBA decoding, so its error contract is load-bearing:
// a missing file is NotFound, a failed read is IoError, and a short read
// must NEVER surface as a silently truncated view (the bug this type
// replaced: a reader that resized its buffer to gcount() and parsed half
// a file as if it were whole).

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "common/mapped_file.h"

namespace granula {
namespace {

// Restores the process-wide hooks even when an assertion bails out.
class HookGuard {
 public:
  ~HookGuard() {
    MappedFile::ForceReadFallbackForTest(false);
    MappedFile::FailReadsForTest(false);
  }
};

std::string WriteTemp(const std::string& name, const std::string& content) {
  std::string path = testing::TempDir() + "/mapped_" + name;
  std::ofstream(path, std::ios::binary | std::ios::trunc) << content;
  return path;
}

TEST(MappedFileTest, MapsWholeFile) {
  const std::string content = "hello mapped world\nline two\n";
  auto file = MappedFile::Open(WriteTemp("whole.txt", content));
  ASSERT_TRUE(file.ok()) << file.status();
  EXPECT_EQ(file->data(), content);
  EXPECT_EQ(file->size(), content.size());
  EXPECT_TRUE(file->mapped());
}

TEST(MappedFileTest, EmptyFileIsEmptyView) {
  auto file = MappedFile::Open(WriteTemp("empty.txt", ""));
  ASSERT_TRUE(file.ok()) << file.status();
  EXPECT_EQ(file->size(), 0u);
  EXPECT_TRUE(file->data().empty());
}

TEST(MappedFileTest, BinaryBytesSurvive) {
  std::string content;
  for (int i = 0; i < 256; ++i) content += static_cast<char>(i);
  auto file = MappedFile::Open(WriteTemp("binary.bin", content));
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(file->data(), content);  // includes embedded NULs
}

TEST(MappedFileTest, MissingFileIsNotFound) {
  auto file = MappedFile::Open(testing::TempDir() + "/mapped_no_such_file");
  ASSERT_FALSE(file.ok());
  EXPECT_EQ(file.status().code(), StatusCode::kNotFound);
  EXPECT_NE(file.status().message().find("mapped_no_such_file"),
            std::string::npos);
}

TEST(MappedFileTest, ViewSurvivesMove) {
  const std::string content = "moved view stays valid";
  auto file = MappedFile::Open(WriteTemp("move.txt", content));
  ASSERT_TRUE(file.ok());
  MappedFile moved = std::move(*file);
  EXPECT_EQ(moved.data(), content);
  MappedFile assigned;
  assigned = std::move(moved);
  EXPECT_EQ(assigned.data(), content);
}

TEST(MappedFileTest, ReadFallbackMatchesMap) {
  HookGuard guard;
  const std::string content = "same bytes either way\n";
  const std::string path = WriteTemp("fallback.txt", content);
  MappedFile::ForceReadFallbackForTest(true);
  auto file = MappedFile::Open(path);
  ASSERT_TRUE(file.ok()) << file.status();
  EXPECT_FALSE(file->mapped());
  EXPECT_EQ(file->data(), content);
  EXPECT_EQ(file->size(), content.size());
}

TEST(MappedFileTest, FailedReadIsIoErrorNeverTruncatedView) {
  HookGuard guard;
  const std::string path = WriteTemp("failread.txt", "doomed content");
  MappedFile::ForceReadFallbackForTest(true);
  MappedFile::FailReadsForTest(true);
  auto file = MappedFile::Open(path);
  ASSERT_FALSE(file.ok());
  EXPECT_EQ(file.status().code(), StatusCode::kIoError);
  EXPECT_NE(file.status().message().find("failread.txt"), std::string::npos);
}

}  // namespace
}  // namespace granula
