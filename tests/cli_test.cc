// In-process CLI dispatch: RunGranula() is the whole `granula` binary
// minus main(), so every exit-code contract is testable without forking.

#include "granula_commands.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/socket.h"
#include "granula/archive/archiver.h"
#include "granula/archive/gba.h"
#include "granula/archive/repository.h"
#include "granula/model/performance_model.h"
#include "granula/monitor/job_logger.h"

namespace granula::cli {
namespace {

// Captures one FILE* stream to a temp file and reads it back.
class Capture {
 public:
  explicit Capture(const std::string& name)
      : path_(testing::TempDir() + "/cli_" + name + ".txt"),
        file_(std::fopen(path_.c_str(), "w+")) {}
  ~Capture() {
    if (file_ != nullptr) std::fclose(file_);
  }

  std::FILE* file() { return file_; }

  std::string text() {
    std::fflush(file_);
    std::ifstream in(path_);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }

 private:
  std::string path_;
  std::FILE* file_;
};

int RunCli(const std::vector<std::string>& args, Capture* out, Capture* err) {
  return RunGranula(args, out->file(), err->file());
}

std::string TempPath(const std::string& name) {
  std::string path = testing::TempDir() + "/cli_" + name;
  std::error_code ec;
  std::filesystem::remove(path, ec);
  return path;
}

// A minimal archive whose root runs for `seconds`; used to manufacture
// baseline/candidate pairs for `granula compare`.
void WriteArchiveFile(const std::string& path, double seconds) {
  SimTime now;
  core::JobLogger logger([&now] { return now; });
  core::OpId root =
      logger.StartOperation(core::kNoOp, "Job", "job", "Root", "Root");
  now = SimTime::Seconds(seconds);
  logger.EndOperation(root);
  core::PerformanceModel model("m");
  ASSERT_TRUE(model.AddRoot("Job", "Root").ok());
  auto archive = core::Archiver().Build(model, logger.records(), {}, {});
  ASSERT_TRUE(archive.ok()) << archive.status();
  std::ofstream(path) << archive.value().ToJsonString();
}

TEST(CliTest, NoArgumentsIsAUsageError) {
  Capture out("usage_out"), err("usage_err");
  EXPECT_EQ(RunCli({}, &out, &err), kExitUsage);
  EXPECT_NE(err.text().find("usage:"), std::string::npos);
}

TEST(CliTest, UnknownCommandIsAUsageError) {
  Capture out("unknown_out"), err("unknown_err");
  EXPECT_EQ(RunCli({"frobnicate"}, &out, &err), kExitUsage);
  EXPECT_NE(err.text().find("unknown command"), std::string::npos);
}

TEST(CliTest, PositionalArgumentIsAUsageError) {
  Capture out("pos_out"), err("pos_err");
  EXPECT_EQ(RunCli({"run", "giraph"}, &out, &err), kExitUsage);
  EXPECT_NE(err.text().find("unexpected argument"), std::string::npos);
}

TEST(CliTest, MissingRequiredFlagIsFatal) {
  Capture out("fatal_out"), err("fatal_err");
  EXPECT_EQ(RunCli({"analyze"}, &out, &err), kExitFatal);
  EXPECT_NE(err.text().find("granula:"), std::string::npos);
}

TEST(CliTest, RunLintAnalyzeRoundTripExitsZero) {
  std::string archive_path = TempPath("roundtrip.json");
  std::string log_path = TempPath("roundtrip.jsonl");
  {
    Capture out("run_out"), err("run_err");
    EXPECT_EQ(RunCli({"run", "--platform=pgxd", "--graph=uniform:400,1600",
                   "--nodes=4", "--workers=4",
                   "--archive-out=" + archive_path,
                   "--log-out=" + log_path},
                  &out, &err),
              kExitOk)
        << err.text();
    EXPECT_TRUE(std::filesystem::exists(archive_path));
    EXPECT_TRUE(std::filesystem::exists(log_path));
  }
  {
    Capture out("lint_out"), err("lint_err");
    EXPECT_EQ(RunCli({"lint", "--log=" + log_path, "--model=pgxd"}, &out, &err),
              kExitOk)
        << err.text();
    EXPECT_NE(out.text().find("record(s)"), std::string::npos);
  }
  {
    Capture out("analyze_out"), err("analyze_err");
    EXPECT_EQ(RunCli({"analyze", "--archive=" + archive_path}, &out, &err),
              kExitOk)
        << err.text();
  }
}

TEST(CliTest, FatalLintDefectsExitThree) {
  // An EndOp with no StartOp is a fatal defect class.
  std::string log_path = TempPath("fatal.jsonl");
  {
    SimTime now;
    core::JobLogger logger([&now] { return now; });
    core::OpId root =
        logger.StartOperation(core::kNoOp, "Job", "job", "Root", "Root");
    now = SimTime::Seconds(1);
    logger.EndOperation(root);
    std::vector<core::LogRecord> records = logger.TakeRecords();
    core::LogRecord orphan;
    orphan.kind = core::LogRecord::Kind::kEndOp;
    orphan.seq = 99;
    orphan.time = SimTime::Seconds(2);
    orphan.op_id = 777;
    records.push_back(orphan);
    std::ofstream file(log_path);
    for (const core::LogRecord& r : records) {
      file << r.ToJson().Dump(0) << "\n";
    }
  }
  Capture out("lint3_out"), err("lint3_err");
  EXPECT_EQ(RunCli({"lint", "--log=" + log_path}, &out, &err), kExitFatalLint);
}

TEST(CliTest, CompareExitsTwoOnRegressionsAndZeroWhenClean) {
  std::string baseline = TempPath("baseline.json");
  std::string slower = TempPath("slower.json");
  WriteArchiveFile(baseline, 1.0);
  WriteArchiveFile(slower, 2.0);
  {
    Capture out("cmp2_out"), err("cmp2_err");
    EXPECT_EQ(RunCli({"compare", "--baseline=" + baseline,
                   "--candidate=" + slower},
                  &out, &err),
              kExitRegressions)
        << err.text();
  }
  {
    Capture out("cmp0_out"), err("cmp0_err");
    EXPECT_EQ(RunCli({"compare", "--baseline=" + baseline,
                   "--candidate=" + baseline},
                  &out, &err),
              kExitOk)
        << err.text();
  }
}

TEST(CliTest, WatchTimeoutExitsFive) {
  Capture out("watch_out"), err("watch_err");
  EXPECT_EQ(RunCli({"watch", "--log=" + TempPath("never_written.jsonl"),
                 "--model=pgxd", "--timeout=0.2", "--poll-ms=10", "--quiet"},
                &out, &err),
            kExitWatchTimeout)
        << err.text();
}

TEST(CliTest, FaultedRunRecoversAndReportsLostTime) {
  std::string archive_path = TempPath("faulted.json");
  Capture out("fault_out"), err("fault_err");
  EXPECT_EQ(RunCli({"run", "--platform=powergraph",
                 "--graph=uniform:400,1600", "--nodes=4", "--workers=4",
                 "--fault=crash:2:1", "--archive-out=" + archive_path},
                &out, &err),
            kExitOk)
      << err.text();
  EXPECT_NE(out.text().find("fault injection: 1 failed attempt(s)"),
            std::string::npos)
      << out.text();
  EXPECT_TRUE(std::filesystem::exists(archive_path));
}

TEST(CliTest, UnrecoverableFaultPlanExitsOne) {
  Capture out("unrec_out"), err("unrec_err");
  EXPECT_EQ(RunCli({"run", "--platform=powergraph",
                 "--graph=uniform:400,1600", "--nodes=4", "--workers=4",
                 "--fault=crash:2:1:9", "--max-attempts=3"},
                &out, &err),
            kExitFatal)
      << err.text();
  EXPECT_NE(out.text().find("did NOT complete"), std::string::npos)
      << out.text();
}

TEST(CliTest, MalformedFaultSpecIsFatal) {
  for (const char* bad : {"--fault=crash:2", "--fault=storage",
                          "--fault=wedge:1:2", "--fault=logdrop"}) {
    Capture out("badfault_out"), err("badfault_err");
    EXPECT_EQ(RunCli({"run", "--platform=pgxd", "--graph=uniform:400,1600",
                   "--nodes=4", "--workers=4", bad},
                  &out, &err),
              kExitFatal)
        << bad << " should be rejected";
    EXPECT_NE(err.text().find("granula:"), std::string::npos) << bad;
  }
}

TEST(CliTest, ModelCommandRendersTheModelTree) {
  Capture out("model_out"), err("model_err");
  EXPECT_EQ(RunCli({"model", "--name=powergraph"}, &out, &err), kExitOk);
  EXPECT_NE(out.text().find("PowerGraph"), std::string::npos);
}

// ------------------------------------------------------------ slow-node --

// The old parser ran strtoull/atof on the fields, so "--slow-node=abc:xyz"
// silently became "node 0 at factor 0.0" — a frozen node instead of an
// error. Every malformed spec must now be a usage error (exit 64).
TEST(CliTest, MalformedSlowNodeIsAUsageError) {
  for (const char* bad :
       {"--slow-node=abc:xyz", "--slow-node=1", "--slow-node=1:2:3",
        "--slow-node=1x:2.0", "--slow-node=1:2.0x", "--slow-node=1:nan"}) {
    Capture out("slownode_out"), err("slownode_err");
    EXPECT_EQ(RunCli({"run", "--platform=pgxd", "--graph=uniform:400,1600",
                   "--nodes=4", "--workers=4", bad},
                  &out, &err),
              kExitUsage)
        << bad << " should be a usage error";
    EXPECT_NE(err.text().find("--slow-node"), std::string::npos) << bad;
  }
}

TEST(CliTest, NonPositiveSlowNodeFactorIsAUsageError) {
  for (const char* bad : {"--slow-node=1:0", "--slow-node=1:-2.0"}) {
    Capture out("slowfac_out"), err("slowfac_err");
    EXPECT_EQ(RunCli({"run", "--platform=pgxd", "--graph=uniform:400,1600",
                   "--nodes=4", "--workers=4", bad},
                  &out, &err),
              kExitUsage)
        << bad;
    EXPECT_NE(err.text().find("positive"), std::string::npos) << bad;
  }
}

TEST(CliTest, OutOfRangeSlowNodeIdIsAUsageError) {
  Capture out("slowrange_out"), err("slowrange_err");
  EXPECT_EQ(RunCli({"run", "--platform=pgxd", "--graph=uniform:400,1600",
                 "--nodes=4", "--workers=4", "--slow-node=9:2.0"},
                &out, &err),
            kExitUsage);
  EXPECT_NE(err.text().find("out of range"), std::string::npos);
}

TEST(CliTest, ValidSlowNodeStillRuns) {
  Capture out("slowok_out"), err("slowok_err");
  EXPECT_EQ(RunCli({"run", "--platform=pgxd", "--graph=uniform:400,1600",
                 "--nodes=4", "--workers=4", "--slow-node=1:2.0"},
                &out, &err),
            kExitOk)
      << err.text();
}

// ----------------------------------------------------------------- bench --

std::string WriteSweepConfig(const std::string& name,
                             const std::string& json) {
  std::string path = TempPath(name);
  std::ofstream(path) << json;
  return path;
}

// Repository directories must start empty: LoadSweepEntries reads every
// archive in the directory, so leftovers from a previous test run would
// leak into the comparison.
std::string FreshRepoDir(const std::string& name) {
  std::string path = testing::TempDir() + "/cli_" + name;
  std::filesystem::remove_all(path);
  return path;
}

constexpr const char* kBenchConfig = R"({
  "platforms": ["pgxd", "graphmat"],
  "algorithms": ["BFS", "PageRank"],
  "graphs": ["uniform:200,800"],
  "nodes": [2],
  "iterations": 4
})";

TEST(CliTest, BenchConfigAndAxisErrorsAreUsageErrors) {
  {
    Capture out("bench64a_out"), err("bench64a_err");
    EXPECT_EQ(RunCli({"bench"}, &out, &err), kExitUsage);  // no axes at all
  }
  {
    Capture out("bench64b_out"), err("bench64b_err");
    EXPECT_EQ(RunCli({"bench", "--config=" + TempPath("no_such_config.json")},
                  &out, &err),
              kExitUsage);
    EXPECT_NE(err.text().find("sweep config"), std::string::npos);
  }
  {
    Capture out("bench64c_out"), err("bench64c_err");
    EXPECT_EQ(RunCli({"bench", "--platforms=spark", "--algorithms=BFS",
                   "--graphs=uniform:200,800"},
                  &out, &err),
              kExitUsage);
    EXPECT_NE(err.text().find("unknown platform"), std::string::npos);
  }
  {
    Capture out("bench64d_out"), err("bench64d_err");
    EXPECT_EQ(RunCli({"bench", "--platforms=pgxd", "--algorithms=BFS",
                   "--graphs=uniform:200,800", "--nodes=two"},
                  &out, &err),
              kExitUsage);
    EXPECT_NE(err.text().find("--nodes"), std::string::npos);
  }
  {
    Capture out("bench64e_out"), err("bench64e_err");
    EXPECT_EQ(RunCli({"bench", "--platforms=pgxd", "--algorithms=BFS",
                   "--graphs=uniform:200,800", "--faults=crash:1:1"},
                  &out, &err),
              kExitUsage);
    EXPECT_NE(err.text().find("NAME=SPEC"), std::string::npos);
  }
}

TEST(CliTest, BenchSweepGateExitCodes) {
  std::string config = WriteSweepConfig("bench_config.json", kBenchConfig);
  std::string baseline_repo = FreshRepoDir("bench_baseline_repo");
  std::string report_path = TempPath("bench_report.txt");
  {
    // Run the sweep and write the comparative report.
    Capture out("bench_out"), err("bench_err");
    EXPECT_EQ(RunCli({"bench", "--config=" + config,
                   "--repo=" + baseline_repo,
                   "--report-out=" + report_path},
                  &out, &err),
              kExitOk)
        << err.text();
    EXPECT_NE(out.text().find("sweep: 4 job(s)"), std::string::npos)
        << out.text();
    EXPECT_NE(out.text().find("pgxd-bfs-uniform-200-800-n2"),
              std::string::npos);
    // The comparative report lists both platforms under one workload.
    EXPECT_NE(out.text().find("BFS on uniform:200,800, 2 nodes"),
              std::string::npos);
    EXPECT_TRUE(std::filesystem::exists(report_path));
  }
  {
    // Same config vs. its own baseline: gate passes.
    Capture out("benchok_out"), err("benchok_err");
    EXPECT_EQ(RunCli({"bench", "--config=" + config,
                   "--repo=" + FreshRepoDir("bench_repo_same"),
                   "--baseline=" + baseline_repo},
                  &out, &err),
              kExitOk)
        << err.text();
    EXPECT_NE(out.text().find("[OK]"), std::string::npos);
  }
  {
    // Doubling PageRank's iterations is a genuine slowdown: gate fails.
    Capture out("benchfail_out"), err("benchfail_err");
    EXPECT_EQ(RunCli({"bench", "--config=" + config, "--iterations=8",
                   "--repo=" + FreshRepoDir("bench_repo_slow"),
                   "--baseline=" + baseline_repo},
                  &out, &err),
              kExitRegressions)
        << err.text();
    EXPECT_NE(out.text().find("[FAIL]"), std::string::npos);
  }
  {
    // ... but an extreme tolerance lets the same sweep through.
    Capture out("benchtol_out"), err("benchtol_err");
    EXPECT_EQ(RunCli({"bench", "--config=" + config, "--iterations=8",
                   "--repo=" + FreshRepoDir("bench_repo_tol"),
                   "--baseline=" + baseline_repo, "--tolerance=50"},
                  &out, &err),
              kExitOk)
        << err.text();
  }
  {
    // A candidate sweep that drops a baseline job also fails the gate.
    Capture out("benchmiss_out"), err("benchmiss_err");
    EXPECT_EQ(RunCli({"bench", "--config=" + config, "--algorithms=BFS",
                   "--repo=" + FreshRepoDir("bench_repo_missing"),
                   "--baseline=" + baseline_repo},
                  &out, &err),
              kExitRegressions)
        << err.text();
    EXPECT_NE(out.text().find("MISSING"), std::string::npos);
  }
}

TEST(CliTest, PackAndQueryRoundTrip) {
  // Build a small repository via `run --save-repo`, pack it to binary,
  // query it by filter / name / subtree path — all exit 0 — and unpack.
  std::string repo = FreshRepoDir("packquery_repo");
  {
    Capture out("pq_run_out"), err("pq_run_err");
    ASSERT_EQ(RunCli({"run", "--platform=pgxd", "--graph=uniform:400,1600",
                   "--save-repo=" + repo},
                  &out, &err),
              kExitOk)
        << err.text();
  }
  {
    Capture out("pq_pack_out"), err("pq_pack_err");
    EXPECT_EQ(RunCli({"pack", "--repo=" + repo}, &out, &err), kExitOk)
        << err.text();
    EXPECT_NE(out.text().find("converted to gba"), std::string::npos);
  }
  {
    // Index-only filter query: one matching row, no body opened.
    Capture out("pq_q1_out"), err("pq_q1_err");
    EXPECT_EQ(RunCli({"query", "--repo=" + repo, "--platform=pgxd"},
                  &out, &err),
              kExitOk)
        << err.text();
    EXPECT_NE(out.text().find("pgxd-BFS-001"), std::string::npos);
    EXPECT_NE(out.text().find("gba"), std::string::npos);
  }
  {
    // Subtree fetch through the packed body prints that operation's JSON.
    Capture out("pq_q2_out"), err("pq_q2_err");
    EXPECT_EQ(RunCli({"query", "--repo=" + repo, "--name=pgxd-BFS-001",
                   "--path=PgxdJob"},
                  &out, &err),
              kExitOk)
        << err.text();
    EXPECT_NE(out.text().find("\"mission_type\""), std::string::npos);
  }
  {
    Capture out("pq_unpack_out"), err("pq_unpack_err");
    EXPECT_EQ(RunCli({"pack", "--repo=" + repo, "--to=json"}, &out, &err),
              kExitOk)
        << err.text();
  }
}

TEST(CliTest, PackRejectsUnknownFormat) {
  Capture out("packbad_out"), err("packbad_err");
  EXPECT_EQ(RunCli({"pack", "--repo=" + FreshRepoDir("packbad_repo"),
                 "--to=xml"},
                &out, &err),
            kExitUsage);
  EXPECT_NE(err.text().find("granula pack:"), std::string::npos);
}

TEST(CliTest, QueryMissingNameIsFatal) {
  std::string repo = FreshRepoDir("querymiss_repo");
  {
    Capture out("qm_run_out"), err("qm_run_err");
    ASSERT_EQ(RunCli({"run", "--platform=pgxd", "--graph=uniform:400,1600",
                   "--save-repo=" + repo},
                  &out, &err),
              kExitOk)
        << err.text();
  }
  Capture out("qm_out"), err("qm_err");
  EXPECT_EQ(RunCli({"query", "--repo=" + repo, "--name=never-saved"},
                &out, &err),
            kExitFatal);
}

TEST(CliTest, QueryGbaDumpMatchesTheWireEncoder) {
  // `query --format=gba --out=FILE` must write the exact bytes the serve
  // daemon would hand to an `Accept: application/x-granula-gba` client.
  std::string repo = FreshRepoDir("querygba_repo");
  {
    Capture out("qg_run_out"), err("qg_run_err");
    ASSERT_EQ(RunCli({"run", "--platform=pgxd", "--graph=uniform:400,1600",
                   "--save-repo=" + repo},
                  &out, &err),
              kExitOk)
        << err.text();
  }
  const std::string dump = TempPath("querygba.gba");
  {
    Capture out("qg_out"), err("qg_err");
    EXPECT_EQ(RunCli({"query", "--repo=" + repo, "--name=pgxd-BFS-001",
                   "--path=PgxdJob", "--format=gba", "--out=" + dump},
                  &out, &err),
              kExitOk)
        << err.text();
    EXPECT_NE(out.text().find("GBA byte"), std::string::npos);
  }
  std::ifstream in(dump, std::ios::binary);
  std::stringstream bytes;
  bytes << in.rdbuf();
  core::ArchiveRepository reader_repo(repo);
  auto subtree = reader_repo.FetchSubtree("pgxd-BFS-001", "PgxdJob");
  ASSERT_TRUE(subtree.ok()) << subtree.status();
  EXPECT_EQ(bytes.str(), core::EncodeGbaSubtree(**subtree));

  // The dump is a standalone, decodable GBA file.
  auto gba = core::GbaReader::Open(bytes.str());
  ASSERT_TRUE(gba.ok()) << gba.status();
  auto decoded = gba->DecodeArchive();
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->root->mission_type, (*subtree)->mission_type);

  {
    // --format=gba without --out is a usage error (binary on a terminal
    // helps nobody), as is an unknown format.
    Capture out("qg_noout_out"), err("qg_noout_err");
    EXPECT_EQ(RunCli({"query", "--repo=" + repo, "--name=pgxd-BFS-001",
                   "--path=PgxdJob", "--format=gba"},
                  &out, &err),
              kExitUsage);
    EXPECT_NE(err.text().find("--out"), std::string::npos);
  }
  {
    Capture out("qg_badfmt_out"), err("qg_badfmt_err");
    EXPECT_EQ(RunCli({"query", "--repo=" + repo, "--name=pgxd-BFS-001",
                   "--path=PgxdJob", "--format=xml"},
                  &out, &err),
              kExitUsage);
  }
}

TEST(CliTest, ServeFlagErrorsExitSixtyFour) {
  Capture out1("sv_root_out"), err1("sv_root_err");
  EXPECT_EQ(RunCli({"serve"}, &out1, &err1), kExitUsage);
  EXPECT_NE(err1.text().find("--root"), std::string::npos);

  const std::string root = FreshRepoDir("serveflags_repo");
  Capture out2("sv_port_out"), err2("sv_port_err");
  EXPECT_EQ(RunCli({"serve", "--root=" + root, "--port=99999"},
                &out2, &err2),
            kExitUsage);

  Capture out3("sv_to_out"), err3("sv_to_err");
  EXPECT_EQ(RunCli({"serve", "--root=" + root, "--timeout-ms=0"},
                &out3, &err3),
            kExitUsage);

  Capture out4("sv_thr_out"), err4("sv_thr_err");
  EXPECT_EQ(RunCli({"serve", "--root=" + root, "--threads=9999"},
                &out4, &err4),
            kExitUsage);
}

TEST(CliTest, ServeBindFailureExitsOne) {
  // Occupy a port first; `granula serve` on the same port must report the
  // bind failure and exit 1 instead of looping or crashing.
  auto occupied = TcpListener::Bind("127.0.0.1", 0);
  ASSERT_TRUE(occupied.ok()) << occupied.status();
  // An existing empty directory is a valid (empty) repository, so the
  // failure below can only come from the bind.
  const std::string root = FreshRepoDir("servebind_repo");
  std::filesystem::create_directories(root);
  Capture out("sv_bind_out"), err("sv_bind_err");
  EXPECT_EQ(RunCli({"serve", "--root=" + root,
                 "--port=" + std::to_string(occupied->port())},
                &out, &err),
            kExitFatal);
  EXPECT_NE(err.text().find("granula serve:"), std::string::npos);
}

}  // namespace
}  // namespace granula::cli
