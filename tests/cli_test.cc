// In-process CLI dispatch: RunGranula() is the whole `granula` binary
// minus main(), so every exit-code contract is testable without forking.

#include "granula_commands.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "granula/archive/archiver.h"
#include "granula/model/performance_model.h"
#include "granula/monitor/job_logger.h"

namespace granula::cli {
namespace {

// Captures one FILE* stream to a temp file and reads it back.
class Capture {
 public:
  explicit Capture(const std::string& name)
      : path_(testing::TempDir() + "/cli_" + name + ".txt"),
        file_(std::fopen(path_.c_str(), "w+")) {}
  ~Capture() {
    if (file_ != nullptr) std::fclose(file_);
  }

  std::FILE* file() { return file_; }

  std::string text() {
    std::fflush(file_);
    std::ifstream in(path_);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }

 private:
  std::string path_;
  std::FILE* file_;
};

int RunCli(const std::vector<std::string>& args, Capture* out, Capture* err) {
  return RunGranula(args, out->file(), err->file());
}

std::string TempPath(const std::string& name) {
  std::string path = testing::TempDir() + "/cli_" + name;
  std::error_code ec;
  std::filesystem::remove(path, ec);
  return path;
}

// A minimal archive whose root runs for `seconds`; used to manufacture
// baseline/candidate pairs for `granula compare`.
void WriteArchiveFile(const std::string& path, double seconds) {
  SimTime now;
  core::JobLogger logger([&now] { return now; });
  core::OpId root =
      logger.StartOperation(core::kNoOp, "Job", "job", "Root", "Root");
  now = SimTime::Seconds(seconds);
  logger.EndOperation(root);
  core::PerformanceModel model("m");
  ASSERT_TRUE(model.AddRoot("Job", "Root").ok());
  auto archive = core::Archiver().Build(model, logger.records(), {}, {});
  ASSERT_TRUE(archive.ok()) << archive.status();
  std::ofstream(path) << archive.value().ToJsonString();
}

TEST(CliTest, NoArgumentsIsAUsageError) {
  Capture out("usage_out"), err("usage_err");
  EXPECT_EQ(RunCli({}, &out, &err), kExitUsage);
  EXPECT_NE(err.text().find("usage:"), std::string::npos);
}

TEST(CliTest, UnknownCommandIsAUsageError) {
  Capture out("unknown_out"), err("unknown_err");
  EXPECT_EQ(RunCli({"frobnicate"}, &out, &err), kExitUsage);
  EXPECT_NE(err.text().find("unknown command"), std::string::npos);
}

TEST(CliTest, PositionalArgumentIsAUsageError) {
  Capture out("pos_out"), err("pos_err");
  EXPECT_EQ(RunCli({"run", "giraph"}, &out, &err), kExitUsage);
  EXPECT_NE(err.text().find("unexpected argument"), std::string::npos);
}

TEST(CliTest, MissingRequiredFlagIsFatal) {
  Capture out("fatal_out"), err("fatal_err");
  EXPECT_EQ(RunCli({"analyze"}, &out, &err), kExitFatal);
  EXPECT_NE(err.text().find("granula:"), std::string::npos);
}

TEST(CliTest, RunLintAnalyzeRoundTripExitsZero) {
  std::string archive_path = TempPath("roundtrip.json");
  std::string log_path = TempPath("roundtrip.jsonl");
  {
    Capture out("run_out"), err("run_err");
    EXPECT_EQ(RunCli({"run", "--platform=pgxd", "--graph=uniform:400,1600",
                   "--nodes=4", "--workers=4",
                   "--archive-out=" + archive_path,
                   "--log-out=" + log_path},
                  &out, &err),
              kExitOk)
        << err.text();
    EXPECT_TRUE(std::filesystem::exists(archive_path));
    EXPECT_TRUE(std::filesystem::exists(log_path));
  }
  {
    Capture out("lint_out"), err("lint_err");
    EXPECT_EQ(RunCli({"lint", "--log=" + log_path, "--model=pgxd"}, &out, &err),
              kExitOk)
        << err.text();
    EXPECT_NE(out.text().find("record(s)"), std::string::npos);
  }
  {
    Capture out("analyze_out"), err("analyze_err");
    EXPECT_EQ(RunCli({"analyze", "--archive=" + archive_path}, &out, &err),
              kExitOk)
        << err.text();
  }
}

TEST(CliTest, FatalLintDefectsExitThree) {
  // An EndOp with no StartOp is a fatal defect class.
  std::string log_path = TempPath("fatal.jsonl");
  {
    SimTime now;
    core::JobLogger logger([&now] { return now; });
    core::OpId root =
        logger.StartOperation(core::kNoOp, "Job", "job", "Root", "Root");
    now = SimTime::Seconds(1);
    logger.EndOperation(root);
    std::vector<core::LogRecord> records = logger.TakeRecords();
    core::LogRecord orphan;
    orphan.kind = core::LogRecord::Kind::kEndOp;
    orphan.seq = 99;
    orphan.time = SimTime::Seconds(2);
    orphan.op_id = 777;
    records.push_back(orphan);
    std::ofstream file(log_path);
    for (const core::LogRecord& r : records) {
      file << r.ToJson().Dump(0) << "\n";
    }
  }
  Capture out("lint3_out"), err("lint3_err");
  EXPECT_EQ(RunCli({"lint", "--log=" + log_path}, &out, &err), kExitFatalLint);
}

TEST(CliTest, CompareExitsTwoOnRegressionsAndZeroWhenClean) {
  std::string baseline = TempPath("baseline.json");
  std::string slower = TempPath("slower.json");
  WriteArchiveFile(baseline, 1.0);
  WriteArchiveFile(slower, 2.0);
  {
    Capture out("cmp2_out"), err("cmp2_err");
    EXPECT_EQ(RunCli({"compare", "--baseline=" + baseline,
                   "--candidate=" + slower},
                  &out, &err),
              kExitRegressions)
        << err.text();
  }
  {
    Capture out("cmp0_out"), err("cmp0_err");
    EXPECT_EQ(RunCli({"compare", "--baseline=" + baseline,
                   "--candidate=" + baseline},
                  &out, &err),
              kExitOk)
        << err.text();
  }
}

TEST(CliTest, WatchTimeoutExitsFive) {
  Capture out("watch_out"), err("watch_err");
  EXPECT_EQ(RunCli({"watch", "--log=" + TempPath("never_written.jsonl"),
                 "--model=pgxd", "--timeout=0.2", "--poll-ms=10", "--quiet"},
                &out, &err),
            kExitWatchTimeout)
        << err.text();
}

TEST(CliTest, FaultedRunRecoversAndReportsLostTime) {
  std::string archive_path = TempPath("faulted.json");
  Capture out("fault_out"), err("fault_err");
  EXPECT_EQ(RunCli({"run", "--platform=powergraph",
                 "--graph=uniform:400,1600", "--nodes=4", "--workers=4",
                 "--fault=crash:2:1", "--archive-out=" + archive_path},
                &out, &err),
            kExitOk)
      << err.text();
  EXPECT_NE(out.text().find("fault injection: 1 failed attempt(s)"),
            std::string::npos)
      << out.text();
  EXPECT_TRUE(std::filesystem::exists(archive_path));
}

TEST(CliTest, UnrecoverableFaultPlanExitsOne) {
  Capture out("unrec_out"), err("unrec_err");
  EXPECT_EQ(RunCli({"run", "--platform=powergraph",
                 "--graph=uniform:400,1600", "--nodes=4", "--workers=4",
                 "--fault=crash:2:1:9", "--max-attempts=3"},
                &out, &err),
            kExitFatal)
      << err.text();
  EXPECT_NE(out.text().find("did NOT complete"), std::string::npos)
      << out.text();
}

TEST(CliTest, MalformedFaultSpecIsFatal) {
  for (const char* bad : {"--fault=crash:2", "--fault=storage",
                          "--fault=wedge:1:2", "--fault=logdrop"}) {
    Capture out("badfault_out"), err("badfault_err");
    EXPECT_EQ(RunCli({"run", "--platform=pgxd", "--graph=uniform:400,1600",
                   "--nodes=4", "--workers=4", bad},
                  &out, &err),
              kExitFatal)
        << bad << " should be rejected";
    EXPECT_NE(err.text().find("granula:"), std::string::npos) << bad;
  }
}

TEST(CliTest, ModelCommandRendersTheModelTree) {
  Capture out("model_out"), err("model_err");
  EXPECT_EQ(RunCli({"model", "--name=powergraph"}, &out, &err), kExitOk);
  EXPECT_NE(out.text().find("PowerGraph"), std::string::npos);
}

}  // namespace
}  // namespace granula::cli
