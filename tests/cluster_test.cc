#include "cluster/cluster.h"

#include <gtest/gtest.h>

namespace granula::cluster {
namespace {

ClusterConfig SmallConfig() {
  ClusterConfig config;
  config.num_nodes = 4;
  config.cores_per_node = 2;
  config.disk_bytes_per_sec = 1000.0;
  config.net_bytes_per_sec = 2000.0;
  config.net_latency = SimTime::Millis(10);
  return config;
}

TEST(ClusterTest, BuildsNamedNodes) {
  sim::Simulator sim;
  Cluster cluster(&sim, SmallConfig());
  EXPECT_EQ(cluster.num_nodes(), 4u);
  EXPECT_EQ(cluster.node(0).hostname(), "node339");
  EXPECT_EQ(cluster.node(3).hostname(), "node342");
  EXPECT_EQ(cluster.node(2).id(), 2u);
  EXPECT_EQ(cluster.node(1).cpu().cores(), 2);
}

TEST(ClusterTest, SendSerializesAndAddsLatency) {
  sim::Simulator sim;
  Cluster cluster(&sim, SmallConfig());
  sim.Spawn([](Cluster& c) -> sim::Task<> {
    co_await c.Send(0, 1, 2000);  // 1s at 2000 B/s + 10ms latency
  }(cluster));
  sim.Run();
  EXPECT_DOUBLE_EQ(sim.Now().seconds(), 1.01);
  EXPECT_EQ(cluster.network_bytes_sent(), 2000u);
}

TEST(ClusterTest, LocalSendIsFree) {
  sim::Simulator sim;
  Cluster cluster(&sim, SmallConfig());
  sim.Spawn([](Cluster& c) -> sim::Task<> {
    co_await c.Send(2, 2, 1000000);
  }(cluster));
  sim.Run();
  EXPECT_EQ(sim.Now(), SimTime());
  EXPECT_EQ(cluster.network_bytes_sent(), 0u);
}

TEST(ClusterTest, SendersContendOnTheirOwnNic) {
  sim::Simulator sim;
  Cluster cluster(&sim, SmallConfig());
  // Two sends from the same node serialize; from different nodes, overlap.
  sim.Spawn([](Cluster& c) -> sim::Task<> {
    co_await c.Send(0, 1, 2000);
  }(cluster));
  sim.Spawn([](Cluster& c) -> sim::Task<> {
    co_await c.Send(0, 2, 2000);
  }(cluster));
  sim.Spawn([](Cluster& c) -> sim::Task<> {
    co_await c.Send(3, 1, 2000);
  }(cluster));
  sim.Run();
  // Node 0's two sends: 1s + 1s serialization (+latency); node 3 overlaps.
  EXPECT_DOUBLE_EQ(sim.Now().seconds(), 2.01);
}

}  // namespace
}  // namespace granula::cluster
