// Unit tests for the deterministic fault plan and its injector: attempt
// coverage and ordering, backoff arithmetic, log-write fault lookup, and
// determinism of the seeded random plan. The injector must stay a pure
// function of the plan — every query here is repeated to prove it.

#include <gtest/gtest.h>

#include "sim/faults.h"

namespace granula::sim {
namespace {

FaultSpec Crash(uint32_t worker, uint64_t step, uint32_t failures = 1) {
  FaultSpec spec;
  spec.kind = FaultKind::kWorkerCrash;
  spec.worker = worker;
  spec.step = step;
  spec.failures = failures;
  return spec;
}

TEST(FaultPlanTest, EmptyPlanIsInert) {
  FaultPlan plan;
  FaultInjector injector(plan);
  EXPECT_FALSE(injector.enabled());
  EXPECT_EQ(injector.JobFault(0), nullptr);
  EXPECT_EQ(injector.CrashAt(0, 0), nullptr);
  EXPECT_EQ(injector.TaskFault(0, 0, 0), nullptr);
  EXPECT_EQ(injector.LoadFault(0, 0), nullptr);
  EXPECT_EQ(injector.StorageFault(0, 0), nullptr);
  EXPECT_EQ(injector.LogFaultFor(7), LogWriteFault::kNone);
}

TEST(FaultPlanTest, JobFaultCoversAttemptsInStepWorkerOrder) {
  FaultPlan plan;
  plan.Add(Crash(/*worker=*/3, /*step=*/5));
  plan.Add(Crash(/*worker=*/1, /*step=*/2));
  FaultInjector injector(plan);
  ASSERT_TRUE(injector.enabled());

  // Attempt 0 is doomed by the earliest (step, worker) spec, regardless
  // of insertion order; attempt 1 by the next; attempt 2 succeeds.
  const FaultSpec* first = injector.JobFault(0);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->step, 2u);
  EXPECT_EQ(first->worker, 1u);
  const FaultSpec* second = injector.JobFault(1);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->step, 5u);
  EXPECT_EQ(second->worker, 3u);
  EXPECT_EQ(injector.JobFault(2), nullptr);
}

TEST(FaultPlanTest, MultiFailureSpecDoomsConsecutiveAttempts) {
  FaultPlan plan;
  plan.Add(Crash(/*worker=*/0, /*step=*/1, /*failures=*/3));
  FaultInjector injector(plan);
  for (uint32_t attempt = 0; attempt < 3; ++attempt) {
    EXPECT_NE(injector.JobFault(attempt), nullptr) << "attempt " << attempt;
  }
  EXPECT_EQ(injector.JobFault(3), nullptr);
}

TEST(FaultPlanTest, CrashAtMatchesOnlyItsStep) {
  FaultPlan plan;
  plan.Add(Crash(/*worker=*/2, /*step=*/4));
  FaultInjector injector(plan);
  EXPECT_EQ(injector.CrashAt(3, 0), nullptr);
  EXPECT_NE(injector.CrashAt(4, 0), nullptr);
  EXPECT_EQ(injector.CrashAt(4, 1), nullptr);  // one failure only
  EXPECT_EQ(injector.CrashAt(5, 0), nullptr);
}

TEST(FaultPlanTest, TaskFaultMatchesWorkerAndStepForBothKinds) {
  FaultPlan plan;
  FaultSpec task;
  task.kind = FaultKind::kTaskFailure;
  task.worker = 1;
  task.step = 0;
  plan.Add(task);
  plan.Add(Crash(/*worker=*/2, /*step=*/3));
  FaultInjector injector(plan);
  EXPECT_NE(injector.TaskFault(1, 0, 0), nullptr);
  // Worker crashes surface as failed task attempts on Hadoop.
  EXPECT_NE(injector.TaskFault(2, 3, 0), nullptr);
  EXPECT_EQ(injector.TaskFault(1, 1, 0), nullptr);
  EXPECT_EQ(injector.TaskFault(0, 0, 0), nullptr);
}

TEST(FaultPlanTest, StorageFaultFiltersKindAndWorker) {
  FaultPlan plan;
  FaultSpec storage;
  storage.kind = FaultKind::kStorageError;
  storage.worker = 4;
  storage.failures = 2;
  plan.Add(storage);
  plan.Add(Crash(/*worker=*/4, /*step=*/0));
  FaultInjector injector(plan);
  EXPECT_NE(injector.StorageFault(4, 0), nullptr);
  EXPECT_NE(injector.StorageFault(4, 1), nullptr);
  EXPECT_EQ(injector.StorageFault(4, 2), nullptr);  // crash doesn't count
  EXPECT_EQ(injector.StorageFault(3, 0), nullptr);
}

TEST(FaultPlanTest, BackoffGrowsExponentially) {
  FaultPlan plan;
  plan.retry.backoff_base = SimTime::Millis(100);
  plan.retry.backoff_factor = 2.0;
  FaultInjector injector(plan);
  EXPECT_EQ(injector.Backoff(0), SimTime::Millis(100));
  EXPECT_EQ(injector.Backoff(1), SimTime::Millis(200));
  EXPECT_EQ(injector.Backoff(3), SimTime::Millis(800));
}

TEST(FaultPlanTest, LogFaultForMatchesSeq) {
  FaultPlan plan;
  FaultSpec drop;
  drop.kind = FaultKind::kLogWrite;
  drop.log_seq = 12;
  drop.log_effect = LogWriteFault::kDrop;
  plan.Add(drop);
  FaultSpec trunc;
  trunc.kind = FaultKind::kLogWrite;
  trunc.log_seq = 30;
  trunc.log_effect = LogWriteFault::kTruncate;
  plan.Add(trunc);
  FaultInjector injector(plan);
  EXPECT_EQ(injector.LogFaultFor(12), LogWriteFault::kDrop);
  EXPECT_EQ(injector.LogFaultFor(30), LogWriteFault::kTruncate);
  EXPECT_EQ(injector.LogFaultFor(13), LogWriteFault::kNone);
}

TEST(FaultPlanTest, RepeatedQueriesAreStable) {
  FaultPlan plan;
  plan.Add(Crash(/*worker=*/1, /*step=*/2, /*failures=*/2));
  FaultInjector injector(plan);
  const FaultSpec* a = injector.JobFault(1);
  const FaultSpec* b = injector.JobFault(1);
  EXPECT_EQ(a, b);  // pure function: same pointer, no consumed state
}

TEST(FaultPlanTest, RandomPlanIsDeterministicInSeed) {
  FaultPlan a = FaultPlan::Random(/*seed=*/42, /*num_workers=*/8,
                                  /*max_step=*/6, /*num_faults=*/5);
  FaultPlan b = FaultPlan::Random(42, 8, 6, 5);
  ASSERT_EQ(a.specs().size(), 5u);
  ASSERT_EQ(b.specs().size(), 5u);
  for (size_t i = 0; i < a.specs().size(); ++i) {
    EXPECT_EQ(a.specs()[i].kind, b.specs()[i].kind);
    EXPECT_EQ(a.specs()[i].worker, b.specs()[i].worker);
    EXPECT_EQ(a.specs()[i].step, b.specs()[i].step);
    EXPECT_EQ(a.specs()[i].work_before_crash, b.specs()[i].work_before_crash);
  }
  FaultPlan c = FaultPlan::Random(43, 8, 6, 5);
  bool any_diff = false;
  for (size_t i = 0; i < c.specs().size(); ++i) {
    if (c.specs()[i].worker != a.specs()[i].worker ||
        c.specs()[i].step != a.specs()[i].step) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff) << "different seeds should give different plans";
  EXPECT_TRUE(FaultPlan::Random(1, /*num_workers=*/0, 4, 3).empty());
}

}  // namespace
}  // namespace granula::sim
