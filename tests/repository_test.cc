#include "granula/archive/repository.h"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "granula/archive/archiver.h"
#include "granula/model/performance_model.h"
#include "granula/monitor/job_logger.h"
#include "granula/visual/model_view.h"

namespace granula::core {
namespace {

PerformanceArchive MakeArchive(const std::string& platform,
                               double seconds) {
  SimTime now;
  JobLogger logger([&now] { return now; });
  OpId root = logger.StartOperation(kNoOp, "Job", "job", "Root", "Root");
  now = SimTime::Seconds(seconds);
  logger.EndOperation(root);
  PerformanceModel model("m");
  (void)model.AddRoot("Job", "Root");
  auto archive = Archiver().Build(
      model, logger.records(), {},
      {{"platform", platform}, {"algorithm", "BFS"}});
  EXPECT_TRUE(archive.ok());
  return std::move(archive).value();
}

std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/repo_" + name;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return dir;
}

TEST(RepositoryTest, SaveGeneratesSequentialNames) {
  ArchiveRepository repo(FreshDir("seq"));
  auto first = repo.Save(MakeArchive("Giraph", 10));
  auto second = repo.Save(MakeArchive("Giraph", 11));
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, "Giraph-BFS-001");
  EXPECT_EQ(*second, "Giraph-BFS-002");
}

TEST(RepositoryTest, ExplicitNameAndRoundtrip) {
  ArchiveRepository repo(FreshDir("explicit"));
  PerformanceArchive original = MakeArchive("PowerGraph", 42);
  auto name = repo.Save(original, "baseline");
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(*name, "baseline");
  auto loaded = repo.Load("baseline");
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->ToJsonString(), original.ToJsonString());
}

TEST(RepositoryTest, ListReportsMetadata) {
  ArchiveRepository repo(FreshDir("list"));
  ASSERT_TRUE(repo.Save(MakeArchive("Giraph", 10)).ok());
  ASSERT_TRUE(repo.Save(MakeArchive("PowerGraph", 20)).ok());
  auto entries = repo.List();
  ASSERT_TRUE(entries.ok()) << entries.status();
  ASSERT_EQ(entries->size(), 2u);
  EXPECT_EQ((*entries)[0].name, "Giraph-BFS-001");
  EXPECT_EQ((*entries)[0].platform, "Giraph");
  EXPECT_EQ((*entries)[0].algorithm, "BFS");
  EXPECT_DOUBLE_EQ((*entries)[0].total_seconds, 10.0);
  EXPECT_EQ((*entries)[0].operations, 1u);
  EXPECT_EQ((*entries)[1].platform, "PowerGraph");
}

TEST(RepositoryTest, ListSkipsForeignFiles) {
  std::string dir = FreshDir("foreign");
  ArchiveRepository repo(dir);
  ASSERT_TRUE(repo.Init().ok());
  { std::ofstream(dir + "/garbage.json") << "not json at all"; }
  { std::ofstream(dir + "/readme.txt") << "hello"; }
  ASSERT_TRUE(repo.Save(MakeArchive("Giraph", 5)).ok());
  auto entries = repo.List();
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 1u);
}

TEST(RepositoryTest, LoadMissingIsNotFound) {
  ArchiveRepository repo(FreshDir("missing"));
  ASSERT_TRUE(repo.Init().ok());
  EXPECT_EQ(repo.Load("nope").status().code(), StatusCode::kNotFound);
}

TEST(RepositoryTest, ListWithoutDirectoryIsNotFound) {
  ArchiveRepository repo(FreshDir("nodir"));
  EXPECT_EQ(repo.List().status().code(), StatusCode::kNotFound);
}

TEST(RepositoryTest, Remove) {
  ArchiveRepository repo(FreshDir("remove"));
  ASSERT_TRUE(repo.Save(MakeArchive("Giraph", 3), "x").ok());
  EXPECT_TRUE(repo.Remove("x").ok());
  EXPECT_EQ(repo.Load("x").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(repo.Remove("x").code(), StatusCode::kNotFound);
}

// ---- error paths: foreign / damaged files in a shared directory ----

TEST(RepositoryErrorTest, LoadMissingFileIsNotFound) {
  ArchiveRepository repo(FreshDir("load_missing"));
  ASSERT_TRUE(repo.Init().ok());
  auto loaded = repo.Load("never-saved");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
  EXPECT_NE(loaded.status().message().find("never-saved"),
            std::string::npos);
}

TEST(RepositoryErrorTest, LoadTruncatedJsonIsCorruption) {
  ArchiveRepository repo(FreshDir("load_trunc"));
  ASSERT_TRUE(repo.Init().ok());
  auto name = repo.Save(MakeArchive("pgxd", 1.0));
  ASSERT_TRUE(name.ok());
  // Chop the file in half, as a crashed copy or a partial download would.
  std::string path = repo.directory() + "/" + name.value() + ".json";
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  in.close();
  std::string text = buffer.str();
  std::ofstream(path, std::ios::trunc) << text.substr(0, text.size() / 2);
  auto loaded = repo.Load(name.value());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(RepositoryErrorTest, LoadNonArchiveJsonIsCorruption) {
  ArchiveRepository repo(FreshDir("load_foreign"));
  ASSERT_TRUE(repo.Init().ok());
  std::ofstream(repo.directory() + "/foreign.json")
      << "{\"root\": 42, \"model\": []}";
  auto loaded = repo.Load("foreign");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(RepositoryErrorTest, ListSkipsDamagedFilesButKeepsGoodOnes) {
  ArchiveRepository repo(FreshDir("list_mixed"));
  ASSERT_TRUE(repo.Init().ok());
  auto good = repo.Save(MakeArchive("giraph", 2.0));
  ASSERT_TRUE(good.ok());
  std::ofstream(repo.directory() + "/broken.json") << "{\"root\": [nope";
  std::ofstream(repo.directory() + "/notes.txt") << "not an archive at all";
  auto entries = repo.List();
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries.value().size(), 1u);
  EXPECT_EQ(entries.value()[0].name, good.value());
  EXPECT_EQ(entries.value()[0].platform, "giraph");
}

// ---- model renderer (shares this test binary for convenience) ----

TEST(ModelViewTest, RendersLevelsAndRules) {
  PerformanceModel model("demo");
  (void)model.AddRoot("Job", "Root");
  (void)model.AddOperation("Job", "Phase", "Job", "Root");
  (void)model.AddRule("Job", "Phase",
                      MakeChildAggregateRule("Total", Aggregate::kSum,
                                             "Duration", "Step"));
  std::string tree = RenderModelTree(model);
  EXPECT_NE(tree.find("performance model 'demo'"), std::string::npos);
  EXPECT_NE(tree.find("Job@Root"), std::string::npos);
  EXPECT_NE(tree.find("[level 1]"), std::string::npos);
  EXPECT_NE(tree.find("Job@Phase"), std::string::npos);
  EXPECT_NE(tree.find("[level 2]"), std::string::npos);
  EXPECT_NE(tree.find("Total :="), std::string::npos);
  // The implicit Duration rule is not spelled out.
  EXPECT_EQ(tree.find("Duration :="), std::string::npos);
}

TEST(ModelViewTest, EmptyModel) {
  PerformanceModel model("empty");
  EXPECT_NE(RenderModelTree(model).find("(no root)"), std::string::npos);
}

}  // namespace
}  // namespace granula::core
