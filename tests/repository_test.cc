#include "granula/archive/repository.h"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "granula/archive/archiver.h"
#include "granula/model/performance_model.h"
#include "granula/monitor/job_logger.h"
#include "granula/visual/model_view.h"

namespace granula::core {
namespace {

PerformanceArchive MakeArchive(const std::string& platform,
                               double seconds) {
  SimTime now;
  JobLogger logger([&now] { return now; });
  OpId root = logger.StartOperation(kNoOp, "Job", "job", "Root", "Root");
  now = SimTime::Seconds(seconds);
  logger.EndOperation(root);
  PerformanceModel model("m");
  (void)model.AddRoot("Job", "Root");
  auto archive = Archiver().Build(
      model, logger.records(), {},
      {{"platform", platform}, {"algorithm", "BFS"}});
  EXPECT_TRUE(archive.ok());
  return std::move(archive).value();
}

std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/repo_" + name;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return dir;
}

TEST(RepositoryTest, SaveGeneratesSequentialNames) {
  ArchiveRepository repo(FreshDir("seq"));
  auto first = repo.Save(MakeArchive("Giraph", 10));
  auto second = repo.Save(MakeArchive("Giraph", 11));
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, "Giraph-BFS-001");
  EXPECT_EQ(*second, "Giraph-BFS-002");
}

TEST(RepositoryTest, ExplicitNameAndRoundtrip) {
  ArchiveRepository repo(FreshDir("explicit"));
  PerformanceArchive original = MakeArchive("PowerGraph", 42);
  auto name = repo.Save(original, "baseline");
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(*name, "baseline");
  auto loaded = repo.Load("baseline");
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->ToJsonString(), original.ToJsonString());
}

TEST(RepositoryTest, ListReportsMetadata) {
  ArchiveRepository repo(FreshDir("list"));
  ASSERT_TRUE(repo.Save(MakeArchive("Giraph", 10)).ok());
  ASSERT_TRUE(repo.Save(MakeArchive("PowerGraph", 20)).ok());
  auto entries = repo.List();
  ASSERT_TRUE(entries.ok()) << entries.status();
  ASSERT_EQ(entries->size(), 2u);
  EXPECT_EQ((*entries)[0].name, "Giraph-BFS-001");
  EXPECT_EQ((*entries)[0].platform, "Giraph");
  EXPECT_EQ((*entries)[0].algorithm, "BFS");
  EXPECT_DOUBLE_EQ((*entries)[0].total_seconds, 10.0);
  EXPECT_EQ((*entries)[0].operations, 1u);
  EXPECT_EQ((*entries)[1].platform, "PowerGraph");
}

TEST(RepositoryTest, ListSkipsForeignFiles) {
  std::string dir = FreshDir("foreign");
  ArchiveRepository repo(dir);
  ASSERT_TRUE(repo.Init().ok());
  { std::ofstream(dir + "/garbage.json") << "not json at all"; }
  { std::ofstream(dir + "/readme.txt") << "hello"; }
  ASSERT_TRUE(repo.Save(MakeArchive("Giraph", 5)).ok());
  auto entries = repo.List();
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 1u);
}

TEST(RepositoryTest, LoadMissingIsNotFound) {
  ArchiveRepository repo(FreshDir("missing"));
  ASSERT_TRUE(repo.Init().ok());
  EXPECT_EQ(repo.Load("nope").status().code(), StatusCode::kNotFound);
}

TEST(RepositoryTest, ListWithoutDirectoryIsNotFound) {
  ArchiveRepository repo(FreshDir("nodir"));
  EXPECT_EQ(repo.List().status().code(), StatusCode::kNotFound);
}

TEST(RepositoryTest, Remove) {
  ArchiveRepository repo(FreshDir("remove"));
  ASSERT_TRUE(repo.Save(MakeArchive("Giraph", 3), "x").ok());
  EXPECT_TRUE(repo.Remove("x").ok());
  EXPECT_EQ(repo.Load("x").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(repo.Remove("x").code(), StatusCode::kNotFound);
}

// ---- model renderer (shares this test binary for convenience) ----

TEST(ModelViewTest, RendersLevelsAndRules) {
  PerformanceModel model("demo");
  (void)model.AddRoot("Job", "Root");
  (void)model.AddOperation("Job", "Phase", "Job", "Root");
  (void)model.AddRule("Job", "Phase",
                      MakeChildAggregateRule("Total", Aggregate::kSum,
                                             "Duration", "Step"));
  std::string tree = RenderModelTree(model);
  EXPECT_NE(tree.find("performance model 'demo'"), std::string::npos);
  EXPECT_NE(tree.find("Job@Root"), std::string::npos);
  EXPECT_NE(tree.find("[level 1]"), std::string::npos);
  EXPECT_NE(tree.find("Job@Phase"), std::string::npos);
  EXPECT_NE(tree.find("[level 2]"), std::string::npos);
  EXPECT_NE(tree.find("Total :="), std::string::npos);
  // The implicit Duration rule is not spelled out.
  EXPECT_EQ(tree.find("Duration :="), std::string::npos);
}

TEST(ModelViewTest, EmptyModel) {
  PerformanceModel model("empty");
  EXPECT_NE(RenderModelTree(model).find("(no root)"), std::string::npos);
}

}  // namespace
}  // namespace granula::core
