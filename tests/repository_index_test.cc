// The indexed repository's three promises: (1) List()/Select() answer
// from index.json without opening a single archive body — pinned here via
// the process-wide BodyReadCount; (2) every save is fsync + rename, so an
// injected I/O fault at any stage leaves no truncated archive visible;
// (3) the LRU subtree cache serves repeat fetches without re-decoding and
// invalidates on overwrite.

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "granula/archive/archiver.h"
#include "granula/archive/repository.h"
#include "granula/model/performance_model.h"
#include "granula/monitor/job_logger.h"

namespace granula::core {
namespace {

// Restores the process-wide hooks even when an assertion bails out.
class HookGuard {
 public:
  ~HookGuard() {
    ArchiveRepository::SetIoFaultHookForTest({});
    ArchiveRepository::SetWallClockForTest(nullptr);
  }
};

PerformanceArchive MakeArchive(const std::string& platform,
                               const std::string& algorithm, double seconds,
                               int supersteps = 3) {
  SimTime now;
  JobLogger logger([&now] { return now; });
  OpId root = logger.StartOperation(kNoOp, "Job", "job", "Root", "Root");
  for (int s = 0; s < supersteps; ++s) {
    OpId step = logger.StartOperation(root, "Master", "master", "Superstep",
                                      "Superstep-" + std::to_string(s));
    now += SimTime::Seconds(seconds / supersteps);
    logger.EndOperation(step);
  }
  now = SimTime::Seconds(seconds);
  logger.EndOperation(root);
  PerformanceModel model("m");
  (void)model.AddRoot("Job", "Root");
  (void)model.AddOperation("Master", "Superstep", "Job", "Root");
  auto archive = Archiver().Build(
      model, logger.records(), {},
      {{"platform", platform}, {"algorithm", algorithm}});
  EXPECT_TRUE(archive.ok());
  return std::move(archive).value();
}

std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/repo_index_" + name;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return dir;
}

int64_t g_fake_now = 0;
int64_t FakeNow() { return g_fake_now; }

// ------------------------------------------------ index-only serving -----

TEST(RepositoryIndexTest, ListNeverOpensBodiesAfterSave) {
  ArchiveRepository repo(FreshDir("noopen"));
  ASSERT_TRUE(repo.Save(MakeArchive("Giraph", "BFS", 10)).ok());
  ASSERT_TRUE(repo.Save(MakeArchive("Pgxd", "WCC", 20)).ok());

  const uint64_t before = ArchiveRepository::BodyReadCount();
  auto entries = repo.List();
  ASSERT_TRUE(entries.ok()) << entries.status();
  EXPECT_EQ(entries->size(), 2u);
  EXPECT_EQ(ArchiveRepository::BodyReadCount(), before)
      << "List() opened an archive body despite a consistent index";
}

TEST(RepositoryIndexTest, FreshProcessServesFromPersistedIndex) {
  std::string dir = FreshDir("persist");
  {
    ArchiveRepository writer(dir);
    ASSERT_TRUE(writer.Save(MakeArchive("Giraph", "BFS", 10)).ok());
    ASSERT_TRUE(writer.Save(MakeArchive("Hadoop", "PageRank", 99)).ok());
  }
  // A brand-new repository object (a different analyst's process) still
  // answers from index.json alone.
  ArchiveRepository reader(dir);
  const uint64_t before = ArchiveRepository::BodyReadCount();
  auto entries = reader.List();
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 2u);
  EXPECT_EQ((*entries)[1].platform, "Hadoop");
  EXPECT_DOUBLE_EQ((*entries)[1].total_seconds, 99.0);
  EXPECT_EQ(ArchiveRepository::BodyReadCount(), before);
}

TEST(RepositoryIndexTest, StaleIndexTriggersRebuildThenServesCheaply) {
  std::string dir = FreshDir("rebuild");
  ArchiveRepository repo(dir);
  ASSERT_TRUE(repo.Save(MakeArchive("Giraph", "BFS", 10)).ok());
  // Simulate a foreign writer: an archive landed without an index update.
  PerformanceArchive foreign = MakeArchive("Pgxd", "WCC", 5);
  std::ofstream(dir + "/dropped-in.json") << foreign.ToJsonString();

  const uint64_t before = ArchiveRepository::BodyReadCount();
  auto entries = repo.List();
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 2u);
  EXPECT_GT(ArchiveRepository::BodyReadCount(), before)
      << "a stale index must be rebuilt from the bodies";

  // The rebuild persisted: the next List() is index-served again.
  const uint64_t after_rebuild = ArchiveRepository::BodyReadCount();
  ASSERT_TRUE(repo.List().ok());
  EXPECT_EQ(ArchiveRepository::BodyReadCount(), after_rebuild);
}

TEST(RepositoryIndexTest, RemoveUpdatesIndex) {
  ArchiveRepository repo(FreshDir("remove"));
  ASSERT_TRUE(repo.Save(MakeArchive("Giraph", "BFS", 1), "a").ok());
  ASSERT_TRUE(repo.Save(MakeArchive("Giraph", "BFS", 2), "b").ok());
  ASSERT_TRUE(repo.Remove("a").ok());
  const uint64_t before = ArchiveRepository::BodyReadCount();
  auto entries = repo.List();
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0].name, "b");
  EXPECT_EQ(ArchiveRepository::BodyReadCount(), before)
      << "Remove() left the index stale";
}

TEST(RepositoryIndexTest, IndexNameIsReserved) {
  ArchiveRepository repo(FreshDir("reserved"));
  auto saved = repo.Save(MakeArchive("Giraph", "BFS", 1), "index");
  ASSERT_FALSE(saved.ok());
  EXPECT_EQ(saved.status().code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------------- queries ---------

TEST(RepositoryQueryTest, FiltersWithoutBodyReads) {
  HookGuard guard;
  ArchiveRepository::SetWallClockForTest(&FakeNow);
  ArchiveRepository repo(FreshDir("query"));
  g_fake_now = 1000;
  ASSERT_TRUE(repo.Save(MakeArchive("Giraph", "BFS", 10)).ok());
  g_fake_now = 2000;
  ASSERT_TRUE(repo.Save(MakeArchive("Giraph", "PageRank", 20)).ok());
  g_fake_now = 3000;
  ASSERT_TRUE(repo.Save(MakeArchive("Pgxd", "BFS", 30)).ok());

  const uint64_t before = ArchiveRepository::BodyReadCount();

  ArchiveRepository::Query by_platform;
  by_platform.platform = "Giraph";
  auto giraph = repo.Select(by_platform);
  ASSERT_TRUE(giraph.ok()) << giraph.status();
  EXPECT_EQ(giraph->size(), 2u);

  ArchiveRepository::Query by_algorithm;
  by_algorithm.algorithm = "BFS";
  auto bfs = repo.Select(by_algorithm);
  ASSERT_TRUE(bfs.ok());
  EXPECT_EQ(bfs->size(), 2u);

  ArchiveRepository::Query window;
  window.saved_since = 1500;
  window.saved_until = 2500;
  auto mid = repo.Select(window);
  ASSERT_TRUE(mid.ok());
  ASSERT_EQ(mid->size(), 1u);
  EXPECT_EQ((*mid)[0].algorithm, "PageRank");
  EXPECT_EQ((*mid)[0].saved_unix_seconds, 2000);

  ArchiveRepository::Query status;
  status.status = "complete";
  auto complete = repo.Select(status);
  ASSERT_TRUE(complete.ok());
  EXPECT_EQ(complete->size(), 3u);
  status.status = "incomplete";
  auto incomplete = repo.Select(status);
  ASSERT_TRUE(incomplete.ok());
  EXPECT_TRUE(incomplete->empty());

  ArchiveRepository::Query both;
  both.platform = "Giraph";
  both.algorithm = "BFS";
  both.saved_until = 1500;
  auto narrow = repo.Select(both);
  ASSERT_TRUE(narrow.ok());
  ASSERT_EQ(narrow->size(), 1u);
  EXPECT_DOUBLE_EQ((*narrow)[0].total_seconds, 10.0);

  EXPECT_EQ(ArchiveRepository::BodyReadCount(), before)
      << "Select() must answer from the index alone";
}

TEST(RepositoryQueryTest, TimeBoundsAreInclusiveAndOrdered) {
  HookGuard guard;
  ArchiveRepository::SetWallClockForTest(&FakeNow);
  ArchiveRepository repo(FreshDir("bounds"));
  g_fake_now = 1000;
  ASSERT_TRUE(repo.Save(MakeArchive("Giraph", "BFS", 10)).ok());
  g_fake_now = 2000;
  ASSERT_TRUE(repo.Save(MakeArchive("Giraph", "PageRank", 20)).ok());

  // Both bounds are inclusive: an entry saved exactly at since or exactly
  // at until matches.
  ArchiveRepository::Query exact;
  exact.saved_since = 1000;
  exact.saved_until = 1000;
  auto at_since = repo.Select(exact);
  ASSERT_TRUE(at_since.ok()) << at_since.status();
  ASSERT_EQ(at_since->size(), 1u);
  EXPECT_EQ((*at_since)[0].saved_unix_seconds, 1000);

  exact.saved_since = 2000;
  exact.saved_until = 2000;
  auto at_until = repo.Select(exact);
  ASSERT_TRUE(at_until.ok());
  ASSERT_EQ(at_until->size(), 1u);
  EXPECT_EQ((*at_until)[0].algorithm, "PageRank");

  ArchiveRepository::Query covering;
  covering.saved_since = 1000;
  covering.saved_until = 2000;
  auto both_ends = repo.Select(covering);
  ASSERT_TRUE(both_ends.ok());
  EXPECT_EQ(both_ends->size(), 2u);

  // since > until is a contract violation, not an empty result — the HTTP
  // layer turns this into a 400.
  ArchiveRepository::Query inverted;
  inverted.saved_since = 2000;
  inverted.saved_until = 1000;
  auto error = repo.Select(inverted);
  ASSERT_FALSE(error.ok());
  EXPECT_EQ(error.status().code(), StatusCode::kInvalidArgument);

  // 0 still means "unbounded", so a since-only query is not "inverted".
  ArchiveRepository::Query open_ended;
  open_ended.saved_since = 1500;
  auto tail = repo.Select(open_ended);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(tail->size(), 1u);
}

// ----------------------------------------------------- LRU cache ---------

TEST(RepositoryCacheTest, HitsMissesAndInvalidation) {
  ArchiveRepository repo(FreshDir("cache"));
  repo.set_write_format(ArchiveFormat::kGba);
  ASSERT_TRUE(repo.Save(MakeArchive("Giraph", "BFS", 9), "job").ok());

  auto first = repo.FetchSubtree("job", "Root/Superstep-1");
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(repo.cache_stats().misses, 1u);
  EXPECT_EQ(repo.cache_stats().hits, 0u);

  const uint64_t body_reads = ArchiveRepository::BodyReadCount();
  auto second = repo.FetchSubtree("job", "Root/Superstep-1");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(repo.cache_stats().hits, 1u);
  EXPECT_EQ(*second, *first) << "a hit must return the shared subtree";
  EXPECT_EQ(ArchiveRepository::BodyReadCount(), body_reads)
      << "a cache hit decoded from disk anyway";

  // Overwriting the archive must invalidate its cached subtrees.
  ASSERT_TRUE(repo.Save(MakeArchive("Giraph", "BFS", 11), "job").ok());
  auto third = repo.FetchSubtree("job", "Root/Superstep-1");
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(repo.cache_stats().misses, 2u)
      << "Save() left a stale subtree in the cache";
}

TEST(RepositoryCacheTest, EvictsLeastRecentlyUsed) {
  ArchiveRepository repo(FreshDir("evict"));
  repo.set_write_format(ArchiveFormat::kGba);
  ASSERT_TRUE(repo.Save(MakeArchive("Giraph", "BFS", 9), "job").ok());
  repo.set_cache_capacity(2);

  ASSERT_TRUE(repo.FetchSubtree("job", "Root/Superstep-0").ok());
  ASSERT_TRUE(repo.FetchSubtree("job", "Root/Superstep-1").ok());
  ASSERT_TRUE(repo.FetchSubtree("job", "Root/Superstep-0").ok());  // touch 0
  ASSERT_TRUE(repo.FetchSubtree("job", "Root/Superstep-2").ok());  // evict 1
  EXPECT_EQ(repo.cache_stats().evictions, 1u);

  ASSERT_TRUE(repo.FetchSubtree("job", "Root/Superstep-0").ok());
  EXPECT_EQ(repo.cache_stats().hits, 2u) << "the touched entry was evicted";
  ASSERT_TRUE(repo.FetchSubtree("job", "Root/Superstep-1").ok());
  EXPECT_EQ(repo.cache_stats().misses, 4u) << "expected 1 to have been evicted";
}

TEST(RepositoryCacheTest, SubtreeFetchMissingPathIsNotFound) {
  ArchiveRepository repo(FreshDir("cache_missing"));
  repo.set_write_format(ArchiveFormat::kGba);
  ASSERT_TRUE(repo.Save(MakeArchive("Giraph", "BFS", 9), "job").ok());
  auto missing = repo.FetchSubtree("job", "Root/NoSuchStep");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  auto no_archive = repo.FetchSubtree("ghost", "Root");
  ASSERT_FALSE(no_archive.ok());
  EXPECT_EQ(no_archive.status().code(), StatusCode::kNotFound);
}

// ------------------------------------------------ durability faults ------

class RepositoryFaultTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RepositoryFaultTest, FailedSaveLeavesNoTruncatedArchive) {
  HookGuard guard;
  const std::string failing_stage = GetParam();
  std::string dir = FreshDir(std::string("fault_") + failing_stage);
  ArchiveRepository repo(dir);
  ASSERT_TRUE(repo.Save(MakeArchive("Giraph", "BFS", 7), "good").ok());
  const std::string good_body = repo.Load("good")->ToJsonString();

  ArchiveRepository::SetIoFaultHookForTest(
      [&failing_stage](const char* stage, const std::string& path) {
        // Fault only archive bodies, not the (best-effort) index rewrite.
        if (stage == failing_stage &&
            path.find("index.json") == std::string::npos) {
          return Status::IoError(std::string("injected ") + stage + " fault");
        }
        return Status::OK();
      });

  // Overwrite of an existing archive and a brand-new save both fail...
  auto overwrite = repo.Save(MakeArchive("Giraph", "BFS", 8), "good");
  ASSERT_FALSE(overwrite.ok()) << failing_stage;
  EXPECT_EQ(overwrite.status().code(), StatusCode::kIoError);
  auto fresh = repo.Save(MakeArchive("Pgxd", "WCC", 9), "fresh");
  ASSERT_FALSE(fresh.ok()) << failing_stage;

  ArchiveRepository::SetIoFaultHookForTest({});

  // ...and neither failure is visible: the old body is intact, the new
  // name absent, and no *.tmp litter survived.
  EXPECT_EQ(repo.Load("good")->ToJsonString(), good_body) << failing_stage;
  EXPECT_EQ(repo.Load("fresh").status().code(), StatusCode::kNotFound);
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().extension(), ".json")
        << "leftover temp file: " << entry.path();
  }
  auto entries = repo.List();
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0].name, "good");
}

INSTANTIATE_TEST_SUITE_P(AllStages, RepositoryFaultTest,
                         ::testing::Values("write", "fsync", "rename"));

// --------------------------------------------------------- packing -------

TEST(RepositoryPackTest, PackRoundTripsBodiesAndPreservesSavedTimes) {
  HookGuard guard;
  ArchiveRepository::SetWallClockForTest(&FakeNow);
  ArchiveRepository repo(FreshDir("pack"));
  g_fake_now = 500;
  ASSERT_TRUE(repo.Save(MakeArchive("Giraph", "BFS", 10), "a").ok());
  g_fake_now = 600;
  ASSERT_TRUE(repo.Save(MakeArchive("Pgxd", "WCC", 20), "b").ok());
  const std::string a_json = repo.Load("a")->ToJsonString();

  g_fake_now = 9999;  // packing must NOT look like a new save
  auto packed = repo.Pack(ArchiveFormat::kGba);
  ASSERT_TRUE(packed.ok()) << packed.status();
  EXPECT_EQ(packed->converted, 2u);
  EXPECT_EQ(packed->skipped, 0u);
  EXPECT_LT(packed->bytes_after, packed->bytes_before)
      << "the binary form should be smaller than the JSON it replaces";

  auto entries = repo.List();
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 2u);
  EXPECT_EQ((*entries)[0].format, ArchiveFormat::kGba);
  EXPECT_EQ((*entries)[0].saved_unix_seconds, 500);
  EXPECT_EQ((*entries)[1].saved_unix_seconds, 600);

  // Bodies survive the round trip to binary and back, byte-exact.
  EXPECT_EQ(repo.Load("a")->ToJsonString(), a_json);
  auto repacked = repo.Pack(ArchiveFormat::kJson);
  ASSERT_TRUE(repacked.ok());
  EXPECT_EQ(repacked->converted, 2u);
  EXPECT_EQ(repo.Load("a")->ToJsonString(), a_json);

  auto again = repo.Pack(ArchiveFormat::kJson);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->converted, 0u);
  EXPECT_EQ(again->skipped, 2u);
}

TEST(RepositoryPackTest, SaveReplacesStaleSiblingFormat) {
  ArchiveRepository repo(FreshDir("sibling"));
  repo.set_write_format(ArchiveFormat::kGba);
  ASSERT_TRUE(repo.Save(MakeArchive("Giraph", "BFS", 5), "job").ok());
  repo.set_write_format(ArchiveFormat::kJson);
  ASSERT_TRUE(repo.Save(MakeArchive("Giraph", "BFS", 6), "job").ok());
  // Only the JSON body remains; the index sees the new content.
  EXPECT_FALSE(std::filesystem::exists(repo.directory() + "/job.gba"));
  ASSERT_TRUE(repo.Load("job").ok());
  auto entries = repo.List();
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0].format, ArchiveFormat::kJson);
  EXPECT_DOUBLE_EQ((*entries)[0].total_seconds, 6.0);
}

// ------------------------------------------------- shallow loading -------

TEST(RepositoryShallowTest, LoadShallowCutsGbaBodies) {
  ArchiveRepository repo(FreshDir("shallow"));
  repo.set_write_format(ArchiveFormat::kGba);
  ASSERT_TRUE(repo.Save(MakeArchive("Giraph", "BFS", 9, 5), "job").ok());

  auto top = repo.LoadShallow("job", 1);
  ASSERT_TRUE(top.ok()) << top.status();
  EXPECT_EQ(top->OperationCount(), 1u);

  auto two = repo.LoadShallow("job", 2);
  ASSERT_TRUE(two.ok());
  EXPECT_EQ(two->OperationCount(), 6u);  // root + 5 supersteps

  auto full = repo.LoadShallow("job", 0);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->ToJsonString(), repo.Load("job")->ToJsonString());
}

}  // namespace
}  // namespace granula::core
