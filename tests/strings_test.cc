#include "common/strings.h"

#include <gtest/gtest.h>

namespace granula {
namespace {

TEST(StringsTest, StrFormatBasics) {
  EXPECT_EQ(StrFormat("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
  EXPECT_EQ(StrFormat("%s/%s", "a", "b"), "a/b");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringsTest, StrFormatLongOutput) {
  std::string big(1000, 'x');
  EXPECT_EQ(StrFormat("%s!", big.c_str()).size(), 1001u);
}

TEST(StringsTest, StrSplitKeepsEmptyFields) {
  EXPECT_EQ(StrSplit("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringsTest, StrJoin) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(StringsTest, SplitJoinRoundtrip) {
  std::string s = "x/y//z";
  EXPECT_EQ(StrJoin(StrSplit(s, '/'), "/"), s);
}

TEST(StringsTest, StrTrim) {
  EXPECT_EQ(StrTrim("  hi  "), "hi");
  EXPECT_EQ(StrTrim("\t\nhi\r\n"), "hi");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(StrTrim("   "), "");
  EXPECT_EQ(StrTrim("no-trim"), "no-trim");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("", "x"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("foobar", "foo"));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(StringsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.00 KiB");
  EXPECT_EQ(HumanBytes(1.5 * 1024 * 1024 * 1024), "1.50 GiB");
}

TEST(StringsTest, HumanSecondsAndPercent) {
  EXPECT_EQ(HumanSeconds(81.59), "81.59s");
  EXPECT_EQ(HumanPercent(0.433), "43.3%");
  EXPECT_EQ(HumanPercent(1.0), "100.0%");
}

}  // namespace
}  // namespace granula
