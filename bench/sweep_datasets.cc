// Supplementary sweep S3: robustness of the Fig. 5 decomposition across
// datasets. The paper reports one run on one graph; here the same Giraph
// BFS experiment repeats over ten different Datagen instances (different
// seeds) and over structurally different graphs (R-MAT, uniform), and the
// phase fractions are summarized as mean +/- stdev. A stable decomposition
// is what makes the paper's single-run Fig. 5 numbers meaningful.

#include <cstdio>

#include "bench/workloads.h"
#include "common/stats.h"
#include "common/strings.h"

namespace granula::bench {
namespace {

struct Fractions {
  double setup, io, processing;
};

Fractions RunOnce(const graph::Graph& g) {
  platform::GiraphPlatform giraph;
  auto result =
      giraph.Run(g, MakeBfsSpec(), MakeDas5LikeCluster(), MakeJobConfig());
  auto archive = core::Archiver().Build(
      core::MakeGraphProcessingDomainModel(), result->records, {}, {});
  const core::ArchivedOperation& root = *archive->root;
  return Fractions{root.InfoNumber("SetupTimeFraction"),
                   root.InfoNumber("IoTimeFraction"),
                   root.InfoNumber("ProcessingTimeFraction")};
}

void Run() {
  std::printf(
      "Sweep S3: stability of the Giraph BFS decomposition across "
      "datasets\n\n");

  Summary setup, io, processing;
  std::printf("ten Datagen instances (100k vertices, seeds 1..10):\n");
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    graph::DatagenConfig config;
    config.num_vertices = 100000;
    config.avg_degree = 15.0;
    config.seed = seed;
    auto g = graph::GenerateDatagen(config);
    if (!g.ok()) continue;
    Fractions f = RunOnce(*g);
    setup.Add(f.setup);
    io.Add(f.io);
    processing.Add(f.processing);
  }
  auto print_row = [](const char* name, const Summary& s) {
    std::printf("  %-14s mean %5.1f%%  stdev %4.2fpp  [%4.1f%%, %4.1f%%]\n",
                name, 100 * s.Mean(), 100 * s.Stdev(), 100 * s.Min(),
                100 * s.Max());
  };
  print_row("Setup (Ts)", setup);
  print_row("I/O (Td)", io);
  print_row("Processing", processing);

  std::printf("\nother graph families (same scale):\n");
  std::printf("  %-14s %8s %8s %8s\n", "family", "Ts", "Td", "Tp");
  {
    graph::RmatConfig config;
    config.scale = 17;  // 131k vertices
    config.edge_factor = 11.0;
    auto g = graph::GenerateRmat(config);
    if (g.ok()) {
      Fractions f = RunOnce(*g);
      std::printf("  %-14s %7.1f%% %7.1f%% %7.1f%%\n", "rmat-17",
                  100 * f.setup, 100 * f.io, 100 * f.processing);
    }
  }
  {
    auto g = graph::GenerateUniform(100000, 750000, 77);
    if (g.ok()) {
      Fractions f = RunOnce(*g);
      std::printf("  %-14s %7.1f%% %7.1f%% %7.1f%%\n", "uniform",
                  100 * f.setup, 100 * f.io, 100 * f.processing);
    }
  }
  std::printf(
      "\nexpected shape: across Datagen seeds the fractions move by at "
      "most a few percentage points (the decomposition is a property of "
      "the platform, not the dataset instance); different graph families "
      "shift Tp moderately but preserve the ordering Td > Ts > Tp.\n");
}

}  // namespace
}  // namespace granula::bench

int main() {
  granula::bench::Run();
  return 0;
}
