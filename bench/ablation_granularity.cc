// Ablation A1: the cost/detail trade-off of incremental modeling
// (requirement R3 / the paper's Issue 4). The same monitoring output is
// archived under the Giraph model truncated at levels 1..5; deeper models
// yield richer archives at higher archiving cost. This is the quantified
// version of the paper's claim that analysts can "balance between the
// investment of effort and the comprehensiveness of results".

#include <chrono>
#include <cstdio>

#include "bench/workloads.h"
#include "common/strings.h"

namespace granula::bench {
namespace {

void Run() {
  std::printf(
      "Ablation A1: model granularity vs archive size & archiving cost\n"
      "(one Giraph BFS run on dg_scale, archived under truncations of the "
      "Giraph model)\n\n");

  platform::JobResult result = RunGiraphReferenceJob();
  core::PerformanceModel full = core::MakeGiraphModel();

  std::printf("%-7s %-14s %10s %12s %12s %12s\n", "level", "view",
              "operations", "infos", "json bytes", "archive ms");
  const char* kViewNames[] = {"", "job only", "domain", "system",
                              "implementation", "superstep stages"};
  for (int level = 1; level <= full.max_level(); ++level) {
    core::Archiver::Options options;
    options.max_level = level;
    auto begin = std::chrono::steady_clock::now();
    auto archive = core::Archiver(options).Build(
        full, result.records, {}, {{"platform", "Giraph"}});
    auto elapsed = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - begin)
                       .count();
    if (!archive.ok()) {
      std::fprintf(stderr, "level %d failed: %s\n", level,
                   archive.status().ToString().c_str());
      continue;
    }
    uint64_t infos = 0;
    archive->root->Visit([&](const core::ArchivedOperation& op) {
      infos += op.infos.size();
    });
    std::printf("%-7d %-14s %10llu %12llu %12zu %12.2f\n", level,
                kViewNames[level],
                static_cast<unsigned long long>(archive->OperationCount()),
                static_cast<unsigned long long>(infos),
                archive->ToJsonString(0).size(), elapsed);
  }
  std::printf(
      "\nexpected shape: operation count and archive size grow by orders "
      "of magnitude with depth,\nwhile the domain-level numbers (phase "
      "durations) are identical at every level.\n");
}

}  // namespace
}  // namespace granula::bench

int main() {
  granula::bench::Run();
  return 0;
}
