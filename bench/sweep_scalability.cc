// Supplementary sweep S1 (Graphalytics-style, the benchmarking context the
// paper builds on [18]): how the domain-level phase times scale with graph
// size and worker count, per platform. The cross-platform shapes the paper
// explains should hold at every scale: PowerGraph's Td grows linearly with
// input bytes (sequential reader) while Giraph's grows ~1/W of that;
// Giraph's Ts is scale-independent.

#include <cstdio>

#include "bench/workloads.h"
#include "common/strings.h"

namespace granula::bench {
namespace {

struct Row {
  double total, ts, td, tp;
};

Row DomainRow(const platform::JobResult& result) {
  auto archive = core::Archiver().Build(
      core::MakeGraphProcessingDomainModel(), result.records, {}, {});
  const core::ArchivedOperation& root = *archive->root;
  return Row{root.Duration().seconds(), root.InfoNumber("SetupTime") * 1e-9,
             root.InfoNumber("IoTime") * 1e-9,
             root.InfoNumber("ProcessingTime") * 1e-9};
}

graph::Graph GraphOfSize(uint64_t vertices) {
  graph::DatagenConfig config;
  config.num_vertices = vertices;
  config.avg_degree = 15.0;
  config.seed = 1000;
  return std::move(graph::GenerateDatagen(config)).value();
}

void Run() {
  std::printf("Sweep S1a: graph size (8 nodes, 8 workers, BFS)\n");
  std::printf("%-12s %10s %9s %9s %9s %9s\n", "platform", "vertices",
              "total", "Ts", "Td", "Tp");
  for (uint64_t n : {25000ull, 50000ull, 100000ull, 200000ull}) {
    graph::Graph g = GraphOfSize(n);
    platform::GiraphPlatform giraph;
    platform::PowerGraphPlatform powergraph;
    auto gr = giraph.Run(g, MakeBfsSpec(), MakeDas5LikeCluster(),
                         MakeJobConfig());
    auto pr = powergraph.Run(g, MakeBfsSpec(), MakeDas5LikeCluster(),
                             MakeJobConfig());
    if (!gr.ok() || !pr.ok()) continue;
    Row grow = DomainRow(*gr);
    Row prow = DomainRow(*pr);
    std::printf("%-12s %10llu %8.2fs %8.2fs %8.2fs %8.2fs\n", "Giraph",
                static_cast<unsigned long long>(n), grow.total, grow.ts,
                grow.td, grow.tp);
    std::printf("%-12s %10llu %8.2fs %8.2fs %8.2fs %8.2fs\n", "PowerGraph",
                static_cast<unsigned long long>(n), prow.total, prow.ts,
                prow.td, prow.tp);
  }

  std::printf("\nSweep S1b: worker count (dg_scale 100k vertices, BFS)\n");
  std::printf("%-12s %8s %9s %9s %9s %9s\n", "platform", "workers",
              "total", "Ts", "Td", "Tp");
  graph::Graph g = MakeDgScaleGraph();
  for (uint32_t workers : {1u, 2u, 4u, 8u}) {
    platform::JobConfig job = MakeJobConfig();
    job.num_workers = workers;
    platform::GiraphPlatform giraph;
    platform::PowerGraphPlatform powergraph;
    auto gr = giraph.Run(g, MakeBfsSpec(), MakeDas5LikeCluster(), job);
    auto pr = powergraph.Run(g, MakeBfsSpec(), MakeDas5LikeCluster(), job);
    if (!gr.ok() || !pr.ok()) continue;
    Row grow = DomainRow(*gr);
    Row prow = DomainRow(*pr);
    std::printf("%-12s %8u %8.2fs %8.2fs %8.2fs %8.2fs\n", "Giraph",
                workers, grow.total, grow.ts, grow.td, grow.tp);
    std::printf("%-12s %8u %8.2fs %8.2fs %8.2fs %8.2fs\n", "PowerGraph",
                workers, prow.total, prow.ts, prow.td, prow.tp);
  }
  std::printf(
      "\nexpected shapes: Giraph Td shrinks with workers (parallel HDFS "
      "load) while PowerGraph Td barely moves (sequential reader — adding "
      "machines does not help); Giraph Ts is flat in graph size but grows "
      "slightly with workers (more containers to allocate).\n");
}

}  // namespace
}  // namespace granula::bench

int main() {
  granula::bench::Run();
  return 0;
}
