// Ablation A2: environment-monitor sampling interval vs the fidelity of
// CPU-to-operation attribution (the mapping behind paper Figs. 6-7).
// Coarser sampling is cheaper (fewer environment records) but smears CPU
// time across phase boundaries. Ground truth is the finest sampling run.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/workloads.h"
#include "common/strings.h"

namespace granula::bench {
namespace {

// CPU-seconds attributed to each domain phase by integrating samples whose
// window end falls inside the phase.
std::map<std::string, double> PhaseCpu(
    const core::PerformanceArchive& archive, double interval) {
  std::map<std::string, double> out;
  for (const auto& child : archive.root->children) {
    double begin = child->StartTime().seconds();
    double end = child->EndTime().seconds();
    double cpu = 0;
    for (const core::EnvironmentRecord& r : archive.environment) {
      if (r.time_seconds > begin && r.time_seconds <= end + 1e-9) {
        cpu += r.cpu_seconds_per_second * interval;
      }
    }
    out[child->mission_id] = cpu;
  }
  return out;
}

core::PerformanceArchive RunWithInterval(double seconds) {
  platform::GiraphPlatform giraph;
  platform::JobConfig job = MakeJobConfig();
  job.monitor_interval = SimTime::Seconds(seconds);
  auto result = giraph.Run(MakeDgScaleGraph(), MakeBfsSpec(),
                           MakeDas5LikeCluster(), job);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    std::abort();
  }
  return ArchiveJob(std::move(result).value(), core::MakeGiraphModel(),
                    "Giraph");
}

void Run() {
  std::printf(
      "Ablation A2: monitor sampling interval vs CPU-attribution error\n"
      "(Giraph BFS on dg_scale; ground truth = 0.1s sampling)\n\n");

  core::PerformanceArchive truth = RunWithInterval(0.1);
  std::map<std::string, double> truth_cpu = PhaseCpu(truth, 0.1);
  double truth_total = 0;
  for (const auto& [phase, cpu] : truth_cpu) truth_total += cpu;

  std::printf("%-10s %10s %16s %18s\n", "interval", "samples",
              "records/s (sim)", "attribution error");
  for (double interval : {0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    core::PerformanceArchive archive = RunWithInterval(interval);
    std::map<std::string, double> cpu = PhaseCpu(archive, interval);
    double error = 0;
    for (const auto& [phase, truth_value] : truth_cpu) {
      error += std::abs(cpu[phase] - truth_value);
    }
    double duration = archive.root->Duration().seconds();
    std::printf("%8.2fs %10zu %16.1f %17.2f%%\n", interval,
                archive.environment.size(),
                archive.environment.size() / duration,
                truth_total > 0 ? 100.0 * error / truth_total : 0.0);
  }
  std::printf(
      "\nexpected shape: error grows with the interval (phase-boundary "
      "smearing), record volume shrinks ~linearly; ~1s (the paper's "
      "setting) keeps error in the low percent range.\n");
}

}  // namespace
}  // namespace granula::bench

int main() {
  granula::bench::Run();
  return 0;
}
