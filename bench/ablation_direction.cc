// Ablation A4: PGX.D's push-pull direction choice on BFS. Per iteration,
// the engine can push along the frontier's out-edges or pull across all
// edges; the auto heuristic switches direction as the frontier explodes
// and collapses (direction-optimizing traversal). Granula's per-iteration
// Direction info makes the decision — and its payoff — observable.

#include <cstdio>

#include "bench/workloads.h"
#include "common/strings.h"
#include "platforms/pgxd.h"

namespace granula::bench {
namespace {

void Run() {
  std::printf(
      "Ablation A4: PGX.D push vs pull vs auto (BFS on dg_scale)\n\n");

  graph::Graph g = MakeDgScaleGraph();

  std::printf("%-10s %12s %14s %12s\n", "policy", "ProcessGraph",
              "push iters", "total");
  for (platform::PgxdDirection direction :
       {platform::PgxdDirection::kPushOnly,
        platform::PgxdDirection::kPullOnly,
        platform::PgxdDirection::kAuto}) {
    platform::PgxdPlatform pgxd(platform::PgxdCostModel{}, direction);
    auto result =
        pgxd.Run(g, MakeBfsSpec(), MakeDas5LikeCluster(), MakeJobConfig());
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      continue;
    }
    auto archive = ArchiveJob(std::move(result).value(),
                              core::MakePgxdModel(), "PGX.D");
    const core::ArchivedOperation* process =
        archive.FindByPath("PgxdJob/ProcessGraph");
    const char* name = direction == platform::PgxdDirection::kAuto
                           ? "auto"
                           : direction == platform::PgxdDirection::kPushOnly
                                 ? "push-only"
                                 : "pull-only";
    std::printf("%-10s %11.3fs %8.0f of %2.0f %11.3fs\n", name,
                process->Duration().seconds(),
                process->InfoNumber("PushIterations"),
                process->InfoNumber("IterationCount"),
                archive.root->Duration().seconds());
  }

  // Per-iteration decisions of the auto policy.
  platform::PgxdPlatform pgxd;
  auto result =
      pgxd.Run(g, MakeBfsSpec(), MakeDas5LikeCluster(), MakeJobConfig());
  auto archive = ArchiveJob(std::move(result).value(),
                            core::MakePgxdModel(), "PGX.D");
  std::printf("\nauto policy per iteration:\n%-14s %12s %10s %12s\n",
              "iteration", "frontier", "direction", "duration");
  for (const core::ArchivedOperation* iter :
       archive.FindOperations("Engine", "Iteration")) {
    std::printf("%-14s %12.0f %10s %11.3fs\n", iter->mission_id.c_str(),
                iter->InfoNumber("FrontierEdges"),
                iter->FindInfo("Direction")->value.AsString().c_str(),
                iter->Duration().seconds());
  }
  std::printf(
      "\nexpected shape: auto pushes on the tiny early/late frontiers and "
      "pulls through the explosive middle, so it is never slower than "
      "either fixed policy (the direction-optimizing BFS result).\n");
}

}  // namespace
}  // namespace granula::bench

int main() {
  granula::bench::Run();
  return 0;
}
