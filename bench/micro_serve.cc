// Microbenchmark for the `granula serve` daemon (DESIGN.md "Serving
// archives"): concurrent HTTP readers over the packed baseline sweep.
//
//   build/bench/micro_serve [--benchmark_filter=...]
//
// The fixture copies examples/baseline_sweep into a temp repository and
// packs it to GBA, then serves it from a loopback HttpServer. Two server
// configurations run back to back (never concurrently — the host pool
// executes one job, and a server's worker loops are that job):
//   hot  — the default shared subtree LRU, so repeated fetches of one
//          subtree decode once and then hit the cache;
//   cold — cache capacity 0, so every request re-opens and re-decodes the
//          packed body.
//
// Acceptance point (read the ratio off BENCH_serve.json):
//   - BM_ServeSubtreeHot >= 2x the throughput of BM_ServeSubtreeCold at
//     the same thread count: the shared LRU, not the client, is what makes
//     hot subtree serving cheap.

#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <string>

#include <benchmark/benchmark.h>

#include "common/socket.h"
#include "common/thread_pool.h"
#include "granula/archive/repository.h"
#include "granula/serve/server.h"
#include "granula/serve/service.h"

namespace granula::serve {
namespace {

using core::ArchiveFormat;
using core::ArchiveRepository;

#ifndef GRANULA_BASELINE_SWEEP_DIR
#define GRANULA_BASELINE_SWEEP_DIR "examples/baseline_sweep"
#endif

constexpr const char* kArchive = "giraph-pagerank-uniform-500-2000-n4";
constexpr const char* kSubtreeTarget =
    "/archives/giraph-pagerank-uniform-500-2000-n4/subtree/GiraphJob/"
    "ProcessGraph";

// Copies the committed baseline sweep into a temp dir and packs every
// archive to GBA, so the cold path below measures binary decode, not JSON
// parsing.
const std::string& PackedRepoDir() {
  static const std::string* dir = [] {
    namespace fs = std::filesystem;
    auto* path = new std::string(
        (fs::temp_directory_path() / "granula_bench_serve").string());
    std::error_code ec;
    fs::remove_all(*path, ec);
    fs::create_directories(*path);
    for (const auto& file : fs::directory_iterator(GRANULA_BASELINE_SWEEP_DIR)) {
      fs::copy_file(file.path(), fs::path(*path) / file.path().filename(),
                    fs::copy_options::overwrite_existing);
    }
    ArchiveRepository repo(*path);
    repo.set_write_format(ArchiveFormat::kGba);
    auto entries = repo.List();
    if (!entries.ok()) std::abort();
    for (const auto& entry : *entries) {
      auto archive = repo.Load(entry.name);
      if (!archive.ok()) std::abort();
      if (!repo.Save(*archive, entry.name).ok()) std::abort();
    }
    return path;
  }();
  return *dir;
}

// Runs at most one server at a time and switches configuration on demand.
constexpr int kMaxClientThreads = 4;
constexpr int kMinWorkers = kMaxClientThreads + 1;

class ServerManager {
 public:
  enum class Mode { kNone, kHot, kCold };

  int Port(Mode mode) {
    std::lock_guard<std::mutex> lock(mu_);
    if (mode != mode_) {
      StopLocked();
      // A blocking worker stays parked on its keep-alive connection, so
      // the daemon needs at least as many workers as the benchmark has
      // client threads. Resize is safe here: no server (and therefore no
      // pool job) is running between StopLocked() and Start().
      if (ThreadPool::Global().num_threads() < kMinWorkers) {
        ThreadPool::Global().Resize(kMinWorkers);
      }
      repo_ = std::make_unique<ArchiveRepository>(PackedRepoDir());
      ServiceOptions service_options;
      if (mode == Mode::kCold) {
        // Cold really means cold: no decoded-subtree LRU and no
        // serialized-response LRU, so every request pays the full
        // open + decode + serialize path.
        repo_->set_cache_capacity(0);
        service_options.response_cache_capacity = 0;
      }
      service_ = std::make_unique<ArchiveService>(repo_.get(),
                                                  service_options);
      ServerOptions options;
      options.port = 0;
      server_ = std::make_unique<HttpServer>(service_.get(), options);
      if (!server_->Start().ok()) std::abort();
      mode_ = mode;
    }
    return server_->port();
  }

  ~ServerManager() { StopLocked(); }

 private:
  void StopLocked() {
    if (server_ != nullptr) server_->Stop();
    server_.reset();
    service_.reset();
    repo_.reset();
    mode_ = Mode::kNone;
  }

  std::mutex mu_;
  Mode mode_ = Mode::kNone;
  std::unique_ptr<ArchiveRepository> repo_;
  std::unique_ptr<ArchiveService> service_;
  std::unique_ptr<HttpServer> server_;
};

int ServerPort(ServerManager::Mode mode) {
  static ServerManager* manager = new ServerManager();
  return manager->Port(mode);
}

// One keep-alive connection per benchmark thread, re-dialed when the
// server (and therefore the port) changes between benchmarks.
struct Conn {
  TcpSocket socket;
  int port = -1;
};

thread_local Conn t_conn;

// Sends one GET and reads one Content-Length-framed response; returns the
// status line + headers + body. Aborts on protocol trouble: a benchmark
// that silently drops requests measures nothing.
std::string RoundTrip(int port, const std::string& target,
                      const std::string& extra_header = "") {
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (t_conn.port != port || !t_conn.socket.valid()) {
      auto socket = TcpConnect("127.0.0.1", port, 2000);
      if (!socket.ok()) std::abort();
      if (!socket->SetTimeouts(5000, 5000).ok()) std::abort();
      t_conn.socket = std::move(*socket);
      t_conn.port = port;
    }
    std::string request = "GET " + target + " HTTP/1.1\r\n";
    if (!extra_header.empty()) request += extra_header + "\r\n";
    request += "\r\n";
    if (!t_conn.socket.WriteAll(request).ok()) {
      t_conn.port = -1;  // stale keep-alive; re-dial once
      continue;
    }
    std::string buffer;
    size_t header_end;
    while ((header_end = buffer.find("\r\n\r\n")) == std::string::npos) {
      if (t_conn.socket.Read(buffer) != TcpSocket::ReadOutcome::kData) break;
    }
    if (header_end == std::string::npos) {
      t_conn.port = -1;
      continue;
    }
    size_t body_len = 0;
    const std::string marker = "Content-Length: ";
    size_t pos = buffer.find(marker);
    if (pos != std::string::npos && pos < header_end) {
      body_len = static_cast<size_t>(
          std::atoll(buffer.c_str() + pos + marker.size()));
    }
    while (buffer.size() < header_end + 4 + body_len) {
      if (t_conn.socket.Read(buffer) != TcpSocket::ReadOutcome::kData) {
        std::abort();
      }
    }
    return buffer;
  }
  std::abort();
}

// ---------------------------------------------------------- benchmarks ----

// Index-only filtered listing: no archive body is ever opened.
void BM_ServeList(benchmark::State& state) {
  const int port = ServerPort(ServerManager::Mode::kHot);
  const uint64_t body_reads_before = ArchiveRepository::BodyReadCount();
  for (auto _ : state) {
    std::string response =
        RoundTrip(port, "/archives?platform=giraph&algorithm=PageRank");
    benchmark::DoNotOptimize(response.data());
  }
  if (state.thread_index() == 0 &&
      ArchiveRepository::BodyReadCount() != body_reads_before) {
    state.SkipWithError("list queries opened archive bodies");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeList)->Threads(1)->Threads(4)->UseRealTime();

// Revalidation: the client already holds the current entity, the server
// answers 304 from the index-derived tag alone.
void BM_ServeEtag304(benchmark::State& state) {
  const int port = ServerPort(ServerManager::Mode::kHot);
  std::string primed = RoundTrip(port, kSubtreeTarget);
  const std::string marker = "ETag: ";
  size_t pos = primed.find(marker);
  if (pos == std::string::npos) std::abort();
  const std::string tag =
      primed.substr(pos + marker.size(),
                    primed.find('\r', pos) - pos - marker.size());
  for (auto _ : state) {
    std::string response =
        RoundTrip(port, kSubtreeTarget, "If-None-Match: " + tag);
    if (response.compare(0, 12, "HTTP/1.1 304") != 0) std::abort();
    benchmark::DoNotOptimize(response.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeEtag304)->Threads(1)->Threads(4)->UseRealTime();

// Hot subtree: decoded once into the shared LRU, every later request from
// every worker reuses that shared_ptr.
void BM_ServeSubtreeHot(benchmark::State& state) {
  const int port = ServerPort(ServerManager::Mode::kHot);
  for (auto _ : state) {
    std::string response = RoundTrip(port, kSubtreeTarget);
    benchmark::DoNotOptimize(response.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeSubtreeHot)->Threads(1)->Threads(4)->UseRealTime();

// Cold subtree: cache capacity 0, every request re-opens the packed file
// and re-decodes the 155-operation ProcessGraph subtree.
void BM_ServeSubtreeCold(benchmark::State& state) {
  const int port = ServerPort(ServerManager::Mode::kCold);
  for (auto _ : state) {
    std::string response = RoundTrip(port, kSubtreeTarget);
    benchmark::DoNotOptimize(response.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeSubtreeCold)->Threads(1)->Threads(4)->UseRealTime();

}  // namespace
}  // namespace granula::serve

BENCHMARK_MAIN();
