// Microbenchmark for the binary archive (GBA) and the indexed repository
// (DESIGN.md "Binary archives"): full decode vs the JSON parse, one-subtree
// fetch through the offset table vs loading the whole archive, shallow
// (level-cut) loads, index-served List(), and the repository's LRU subtree
// cache cold vs warm.
//
//   build/bench/micro_archive_query [--benchmark_filter=...]
//
// Acceptance points for this path (read the ratios off BENCH_archive.json):
//   - BM_GbaDecodeFull >= 5x BM_JsonParseFull at the same archive size;
//   - BM_GbaSubtreeFetch >= 20x BM_JsonSubtreeFetch (a packed body decodes
//     one superstep's rows; JSON has to parse the entire file first).

#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/mapped_file.h"
#include "granula/archive/archiver.h"
#include "granula/archive/gba.h"
#include "granula/archive/repository.h"
#include "granula/model/performance_model.h"
#include "granula/monitor/job_logger.h"

namespace granula::core {
namespace {

// One synthetic job archive shaped like a real superstep trace: a root
// with `supersteps` phases of `workers` worker steps each, one info per
// worker — big enough that the parse/decode asymmetry is measurable.
PerformanceArchive MakeArchive(int supersteps, int workers) {
  SimTime now;
  JobLogger logger([&now] { return now; });
  OpId root = logger.StartOperation(kNoOp, "Job", "job-0", "Root");
  for (int s = 0; s < supersteps; ++s) {
    OpId step = logger.StartOperation(root, "Master", "master", "Superstep",
                                      "Superstep-" + std::to_string(s));
    for (int w = 0; w < workers; ++w) {
      OpId work = logger.StartOperation(step, "Worker",
                                        "Worker-" + std::to_string(w),
                                        "Compute");
      logger.AddInfo(work, "MessagesSent", Json(int64_t{1000 + w}));
      now += SimTime::Millis(1);
      logger.EndOperation(work);
    }
    logger.EndOperation(step);
  }
  logger.EndOperation(root);

  PerformanceModel model("bench");
  (void)model.AddRoot("Job", "Root");
  (void)model.AddOperation("Master", "Superstep", "Job", "Root");
  (void)model.AddOperation("Worker", "Compute", "Master", "Superstep");
  auto archive = Archiver().Build(model, logger.records(), {},
                                  {{"platform", "Bench"},
                                   {"algorithm", "BFS"}});
  return std::move(archive).value();
}

constexpr int kSupersteps = 50;
constexpr int kWorkers = 64;
constexpr const char* kSubtreePath = "Root/Superstep-30";

struct Fixture {
  PerformanceArchive archive;
  std::string json;
  std::string gba;
  std::string dir;         // repository with the same archive in both forms
  std::string json_path;   // <dir>/bench-json.json
  std::string gba_path;    // <dir>/bench-gba.gba
};

const Fixture& Bench() {
  static const Fixture* fixture = [] {
    auto* f = new Fixture();
    f->archive = MakeArchive(kSupersteps, kWorkers);
    f->json = f->archive.ToJsonString();
    f->gba = EncodeGba(f->archive);
    f->dir = (std::filesystem::temp_directory_path() /
              "granula_bench_archive_query")
                 .string();
    std::error_code ec;
    std::filesystem::remove_all(f->dir, ec);
    ArchiveRepository repo(f->dir);
    if (!repo.Save(f->archive, "bench-json").ok()) std::abort();
    repo.set_write_format(ArchiveFormat::kGba);
    if (!repo.Save(f->archive, "bench-gba").ok()) std::abort();
    f->json_path = f->dir + "/bench-json.json";
    f->gba_path = f->dir + "/bench-gba.gba";
    // Warm List() once so the index is persisted and the BM_RepoList
    // benchmark measures index serving, not the first rebuild.
    if (!repo.List().ok()) std::abort();
    return f;
  }();
  return *fixture;
}

// ---------------------------------------------------------- serialize ----

void BM_JsonSerialize(benchmark::State& state) {
  const Fixture& f = Bench();
  for (auto _ : state) {
    std::string out = f.archive.ToJsonString();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(f.json.size()));
}
BENCHMARK(BM_JsonSerialize)->Unit(benchmark::kMillisecond);

void BM_GbaEncode(benchmark::State& state) {
  const Fixture& f = Bench();
  for (auto _ : state) {
    std::string out = EncodeGba(f.archive);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(f.gba.size()));
}
BENCHMARK(BM_GbaEncode)->Unit(benchmark::kMillisecond);

// -------------------------------------------------------- full decode ----

void BM_JsonParseFull(benchmark::State& state) {
  const Fixture& f = Bench();
  for (auto _ : state) {
    auto archive = PerformanceArchive::FromJsonString(f.json);
    if (!archive.ok()) std::abort();
    benchmark::DoNotOptimize(archive->OperationCount());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(f.json.size()));
}
BENCHMARK(BM_JsonParseFull)->Unit(benchmark::kMillisecond);

void BM_GbaDecodeFull(benchmark::State& state) {
  const Fixture& f = Bench();
  for (auto _ : state) {
    auto reader = GbaReader::Open(f.gba);
    if (!reader.ok()) std::abort();
    auto archive = reader->DecodeArchive();
    if (!archive.ok()) std::abort();
    benchmark::DoNotOptimize(archive->OperationCount());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(f.gba.size()));
}
BENCHMARK(BM_GbaDecodeFull)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------- subtree / levels ----

// The pre-GBA way to answer "show me Superstep-30": parse the whole file,
// walk to the subtree, deep-copy it out.
void BM_JsonSubtreeFetch(benchmark::State& state) {
  const Fixture& f = Bench();
  for (auto _ : state) {
    auto file = MappedFile::Open(f.json_path);
    if (!file.ok()) std::abort();
    auto archive = PerformanceArchive::FromJsonString(file->data());
    if (!archive.ok()) std::abort();
    const ArchivedOperation* op = archive->FindByPath(kSubtreePath);
    if (op == nullptr) std::abort();
    auto copy = op->Clone();
    benchmark::DoNotOptimize(copy->SubtreeSize());
  }
}
BENCHMARK(BM_JsonSubtreeFetch)->Unit(benchmark::kMillisecond);

// The offset-table way: map the packed body, skip straight to the
// subtree's row range, decode only those rows.
void BM_GbaSubtreeFetch(benchmark::State& state) {
  const Fixture& f = Bench();
  for (auto _ : state) {
    auto file = MappedFile::Open(f.gba_path);
    if (!file.ok()) std::abort();
    auto reader = GbaReader::Open(file->data());
    if (!reader.ok()) std::abort();
    auto subtree = reader->DecodeSubtree(kSubtreePath);
    if (!subtree.ok()) std::abort();
    benchmark::DoNotOptimize((*subtree)->SubtreeSize());
  }
}
BENCHMARK(BM_GbaSubtreeFetch);

// Level-cut load, as used by `granula bench --baseline --depth=N` gates:
// root + supersteps, workers never decoded.
void BM_GbaLoadShallow2(benchmark::State& state) {
  const Fixture& f = Bench();
  ArchiveRepository repo(f.dir);
  for (auto _ : state) {
    auto archive = repo.LoadShallow("bench-gba", 2);
    if (!archive.ok()) std::abort();
    benchmark::DoNotOptimize(archive->OperationCount());
  }
}
BENCHMARK(BM_GbaLoadShallow2);

// ------------------------------------------------------ repository ops ----

// Index-served listing: answered from index.json, no archive body opened.
void BM_RepoListIndexed(benchmark::State& state) {
  const Fixture& f = Bench();
  ArchiveRepository repo(f.dir);
  for (auto _ : state) {
    auto entries = repo.List();
    if (!entries.ok()) std::abort();
    benchmark::DoNotOptimize(entries->size());
  }
}
BENCHMARK(BM_RepoListIndexed);

// Subtree fetch through the repository, cold: a fresh repository object
// per iteration, so every fetch misses the LRU and decodes from disk.
void BM_FetchSubtreeCold(benchmark::State& state) {
  const Fixture& f = Bench();
  for (auto _ : state) {
    ArchiveRepository repo(f.dir);
    auto subtree = repo.FetchSubtree("bench-gba", kSubtreePath);
    if (!subtree.ok()) std::abort();
    benchmark::DoNotOptimize((*subtree)->SubtreeSize());
  }
}
BENCHMARK(BM_FetchSubtreeCold);

// Same fetch, warm: one repository, so after the first miss every
// iteration is an LRU hit returning the shared decoded subtree.
void BM_FetchSubtreeWarm(benchmark::State& state) {
  const Fixture& f = Bench();
  ArchiveRepository repo(f.dir);
  for (auto _ : state) {
    auto subtree = repo.FetchSubtree("bench-gba", kSubtreePath);
    if (!subtree.ok()) std::abort();
    benchmark::DoNotOptimize((*subtree)->SubtreeSize());
  }
}
BENCHMARK(BM_FetchSubtreeWarm);

}  // namespace
}  // namespace granula::core

BENCHMARK_MAIN();
