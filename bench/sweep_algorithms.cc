// Supplementary sweep S2: processing time (Tp) for every platform x
// algorithm pair — the "navigating the maze of graph analytics
// frameworks" comparison ([23] in the paper) that the shared domain model
// makes possible with one metric definition. Expected shapes: frontier
// engines (PGX.D) win traversals; SpMV (GraphMat) is competitive on
// all-active PageRank but pays full-matrix streaming on BFS/SSSP/WCC;
// Hadoop is last everywhere; all platforms compute identical values.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/workloads.h"
#include "common/strings.h"
#include "platforms/graphmat.h"
#include "platforms/hadoop.h"
#include "platforms/pgxd.h"

namespace granula::bench {
namespace {

// A moderate graph keeps 20 full runs fast.
graph::Graph SweepGraph() {
  graph::DatagenConfig config;
  config.num_vertices = 30000;
  config.avg_degree = 12.0;
  config.seed = 1000;
  return std::move(graph::GenerateDatagen(config)).value();
}

template <typename Platform>
double RunTp(Platform& platform, const graph::Graph& g,
             algo::AlgorithmId id) {
  algo::AlgorithmSpec spec;
  spec.id = id;
  spec.source = 1;
  spec.max_iterations = 6;
  auto result =
      platform.Run(g, spec, MakeDas5LikeCluster(), MakeJobConfig());
  if (!result.ok()) return -1;
  auto archive = core::Archiver().Build(
      core::MakeGraphProcessingDomainModel(), result->records, {}, {});
  if (!archive.ok()) return -1;
  return archive->root->InfoNumber("ProcessingTime") * 1e-9;
}

void Run() {
  std::printf(
      "Sweep S2: processing time Tp (seconds) per platform and algorithm\n"
      "(30k-vertex Datagen graph, 8 nodes; identical outputs across "
      "platforms are enforced by the test suite)\n\n");

  graph::Graph g = SweepGraph();
  constexpr algo::AlgorithmId kAlgorithms[] = {
      algo::AlgorithmId::kBfs, algo::AlgorithmId::kSssp,
      algo::AlgorithmId::kWcc, algo::AlgorithmId::kPageRank};

  std::printf("%-12s %10s %10s %10s %10s\n", "platform", "BFS", "SSSP",
              "WCC", "PageRank");
  {
    platform::GiraphPlatform p;
    std::printf("%-12s", "Giraph");
    for (algo::AlgorithmId id : kAlgorithms) {
      std::printf(" %9.2fs", RunTp(p, g, id));
    }
    std::printf("\n");
  }
  {
    platform::PowerGraphPlatform p;
    std::printf("%-12s", "PowerGraph");
    for (algo::AlgorithmId id : kAlgorithms) {
      std::printf(" %9.2fs", RunTp(p, g, id));
    }
    std::printf("\n");
  }
  {
    platform::PgxdPlatform p;
    std::printf("%-12s", "PGX.D");
    for (algo::AlgorithmId id : kAlgorithms) {
      std::printf(" %9.2fs", RunTp(p, g, id));
    }
    std::printf("\n");
  }
  {
    platform::GraphMatPlatform p;
    std::printf("%-12s", "GraphMat");
    for (algo::AlgorithmId id : kAlgorithms) {
      std::printf(" %9.2fs", RunTp(p, g, id));
    }
    std::printf("\n");
  }
  {
    platform::HadoopPlatform p;
    std::printf("%-12s", "Hadoop");
    for (algo::AlgorithmId id : kAlgorithms) {
      std::printf(" %9.2fs", RunTp(p, g, id));
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace granula::bench

int main() {
  granula::bench::Run();
  return 0;
}
