// Host-parallelism benchmarks: superstep compute throughput versus
// GRANULA_HOST_THREADS (the ISSUE acceptance axis — >=3x at 8 threads on a
// >=1M-scale graph, given >=8 physical cores), plus microbenches for the
// sharded MessageStore deliver/merge path and parallel CSR construction.
//
// Every benchmark sweeps the thread axis via ThreadPool::Global().Resize(),
// so one process produces the whole scaling curve; tools/run_bench.sh emits
// the curve as BENCH_engine.json.

#include <cstdint>

#include <benchmark/benchmark.h>

#include "common/thread_pool.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "platforms/graphmat.h"
#include "platforms/message_store.h"
#include "platforms/pgxd.h"

namespace granula {
namespace {

// ~1.7M-scale graph (150k vertices + ~1.5M arcs) shared by the engine
// benches; built once per process.
const graph::Graph& BigGraph() {
  static const graph::Graph* g = [] {
    graph::DatagenConfig config;
    config.num_vertices = 150'000;
    config.avg_degree = 10.0;
    config.seed = 7;
    return new graph::Graph(
        std::move(graph::GenerateDatagen(config)).value());
  }();
  return *g;
}

algo::AlgorithmSpec PageRank(uint64_t iterations) {
  algo::AlgorithmSpec spec;
  spec.id = algo::AlgorithmId::kPageRank;
  spec.max_iterations = iterations;
  return spec;
}

// Superstep-heavy end-to-end run: PageRank keeps every vertex active, so
// host time is dominated by the data-parallel compute inside supersteps —
// the part the thread pool accelerates. range(0) = host threads.
void BM_GraphMatPageRankSupersteps(benchmark::State& state) {
  const graph::Graph& g = BigGraph();
  ThreadPool::Global().Resize(static_cast<int>(state.range(0)));
  platform::GraphMatPlatform graphmat;
  for (auto _ : state) {
    auto result = graphmat.Run(g, PageRank(5), cluster::ClusterConfig{},
                               platform::JobConfig{});
    benchmark::DoNotOptimize(result);
  }
  ThreadPool::Global().Resize(1);
  state.SetItemsProcessed(state.iterations() * 5 *
                          static_cast<int64_t>(g.num_edges()));
}
BENCHMARK(BM_GraphMatPageRankSupersteps)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_PgxdPageRankSupersteps(benchmark::State& state) {
  const graph::Graph& g = BigGraph();
  ThreadPool::Global().Resize(static_cast<int>(state.range(0)));
  platform::PgxdPlatform pgxd;
  for (auto _ : state) {
    auto result = pgxd.Run(g, PageRank(5), cluster::ClusterConfig{},
                           platform::JobConfig{});
    benchmark::DoNotOptimize(result);
  }
  ThreadPool::Global().Resize(1);
  state.SetItemsProcessed(state.iterations() * 5 *
                          static_cast<int64_t>(g.num_edges()));
}
BENCHMARK(BM_PgxdPageRankSupersteps)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Isolated MessageStore path: sharded deliver (range(0) host threads, one
// shard per chunk) followed by the merge at Swap. Models one full-frontier
// superstep exchanging ~10 messages per vertex.
void BM_MessageStoreDeliverMerge(benchmark::State& state) {
  constexpr uint64_t kVertices = 200'000;
  constexpr uint64_t kPerVertex = 10;
  ThreadPool& pool = ThreadPool::Global();
  pool.Resize(static_cast<int>(state.range(0)));
  platform::MessageStore store(kVertices, algo::Combiner::kSum);
  for (auto _ : state) {
    uint64_t grain = ChunkedGrain(kVertices);
    uint64_t first = store.AddShards(ThreadPool::NumChunks(kVertices, grain));
    pool.ParallelFor(0, kVertices, grain,
                     [&](uint64_t chunk, uint64_t lo, uint64_t hi) {
                       uint64_t shard = first + chunk;
                       for (uint64_t v = lo; v < hi; ++v) {
                         for (uint64_t k = 0; k < kPerVertex; ++k) {
                           store.Deliver(shard, (v * 17 + k * 31) % kVertices,
                                         1.0);
                         }
                       }
                     });
    store.Swap();
    benchmark::DoNotOptimize(store.current_total());
  }
  pool.Resize(1);
  state.SetItemsProcessed(state.iterations() * kVertices * kPerVertex);
}
BENCHMARK(BM_MessageStoreDeliverMerge)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Parallel CSR construction over the big graph's edge list.
void BM_CsrBuild(benchmark::State& state) {
  const graph::Graph& g = BigGraph();
  ThreadPool::Global().Resize(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    graph::Csr csr = graph::Csr::BuildUndirected(g.num_vertices(), g.edges());
    benchmark::DoNotOptimize(csr.num_arcs());
  }
  ThreadPool::Global().Resize(1);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.num_edges()));
}
BENCHMARK(BM_CsrBuild)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace granula

BENCHMARK_MAIN();
