// Microbenchmark for the JSONL serialization fast paths (DESIGN.md
// "Serialization fast paths"): records/s for emitting and parsing platform
// log lines through the old DOM route (ToJson().Dump / Json::Parse +
// FromJson) versus the zero-copy codec (AppendJsonl / ParseJsonl), plus
// parallel ReadLogRecords throughput against the host-thread axis.
//
//   build/bench/micro_jsonl [--benchmark_filter=...]
//
// The acceptance point for this path: single-thread ParseJsonl ≥ 3x the
// DOM parse on a large canonical log (compare BM_ParseJsonl with
// BM_ParseDom at the same record count in BENCH_jsonl.json).

#include <cstdio>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/thread_pool.h"
#include "granula/monitor/job_logger.h"

namespace granula::core {
namespace {

// A synthetic job log shaped like a real superstep trace: start/end pairs
// with actor annotations and one info record per worker step — the same
// mix of record kinds and string lengths the platforms emit.
std::vector<LogRecord> MakeLog(size_t records_wanted) {
  SimTime now;
  JobLogger logger([&now] { return now; });
  OpId root = logger.StartOperation(kNoOp, "Job", "job-0", "Root");
  size_t superstep = 0;
  while (logger.records().size() + 2 < records_wanted) {
    OpId step =
        logger.StartOperation(root, "Master", "master", "Superstep",
                              "Superstep-" + std::to_string(superstep++));
    for (int w = 0; w < 16 && logger.records().size() + 3 < records_wanted;
         ++w) {
      OpId work = logger.StartOperation(
          step, "Worker", "Worker-" + std::to_string(w), "Compute");
      logger.AddInfo(work, "MessagesSent", Json(int64_t{100000 + w}));
      now += SimTime::Micros(750);
      logger.EndOperation(work);
    }
    logger.EndOperation(step);
  }
  logger.EndOperation(root);
  return logger.TakeRecords();
}

std::vector<std::string> MakeLines(const std::vector<LogRecord>& records) {
  std::vector<std::string> lines;
  lines.reserve(records.size());
  for (const LogRecord& r : records) {
    std::string line;
    r.AppendJsonl(line);
    lines.push_back(std::move(line));
  }
  return lines;
}

// ---------------------------------------------------------------- emit ----

void BM_EmitDom(benchmark::State& state) {
  std::vector<LogRecord> records = MakeLog(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    std::string out;
    for (const LogRecord& r : records) {
      out += r.ToJson().Dump(0);
      out += '\n';
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(records.size()));
}
BENCHMARK(BM_EmitDom)->Arg(10000)->Arg(100000);

void BM_EmitJsonl(benchmark::State& state) {
  std::vector<LogRecord> records = MakeLog(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    std::string out;
    for (const LogRecord& r : records) {
      r.AppendJsonl(out);
      out += '\n';
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(records.size()));
}
BENCHMARK(BM_EmitJsonl)->Arg(10000)->Arg(100000);

// --------------------------------------------------------------- parse ----

void BM_ParseDom(benchmark::State& state) {
  std::vector<std::string> lines =
      MakeLines(MakeLog(static_cast<size_t>(state.range(0))));
  for (auto _ : state) {
    for (const std::string& line : lines) {
      auto parsed = Json::Parse(line);
      auto record = LogRecord::FromJson(*parsed);
      benchmark::DoNotOptimize(record.ok());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(lines.size()));
}
BENCHMARK(BM_ParseDom)->Arg(10000)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_ParseJsonl(benchmark::State& state) {
  std::vector<std::string> lines =
      MakeLines(MakeLog(static_cast<size_t>(state.range(0))));
  for (auto _ : state) {
    for (const std::string& line : lines) {
      auto record = LogRecord::ParseJsonl(line);
      benchmark::DoNotOptimize(record.ok());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(lines.size()));
}
BENCHMARK(BM_ParseJsonl)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

// ------------------------------------------------------ parallel ingest ----

// End-to-end batch load (file read + line split + parse + concatenate)
// against the host-thread axis; arg = thread count over a 1M-record log.
void BM_ReadLogRecordsThreads(benchmark::State& state) {
  static const std::string* path = [] {
    auto* p = new std::string(
        (std::filesystem::temp_directory_path() / "granula_bench_jsonl.log")
            .string());
    std::vector<LogRecord> records = MakeLog(1000000);
    if (!WriteLogRecords(*p, records).ok()) std::abort();
    return p;
  }();
  const int original = ThreadPool::Global().num_threads();
  ThreadPool::Global().Resize(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto records = ReadLogRecords(*path);
    if (!records.ok()) std::abort();
    benchmark::DoNotOptimize(records->size());
    state.counters["records"] = static_cast<double>(records->size());
  }
  ThreadPool::Global().Resize(original);
  state.SetItemsProcessed(state.iterations() * 1000000);
}
BENCHMARK(BM_ReadLogRecordsThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace granula::core

BENCHMARK_MAIN();
