// Reproduces paper Fig. 6: per-node CPU utilization of the Giraph job
// mapped onto its domain-level operations. The expected shape: setup
// phases nearly idle, LoadGraph CPU-heavy (parsing), bursty and
// imbalanced utilization during ProcessGraph. Writes fig6_giraph_cpu.svg.

#include <algorithm>
#include <cstdio>
#include <map>

#include "bench/workloads.h"
#include "common/strings.h"
#include "granula/analysis/attribution.h"
#include "granula/visual/svg.h"
#include "granula/visual/text.h"

namespace granula::bench {
namespace {

void Run() {
  std::printf(
      "Fig. 6 reproduction: CPU utilization of Giraph operations\n"
      "paper: setup not compute-intensive; LoadGraph CPU-heavy; "
      "ProcessGraph bursty and under-utilized on average\n\n");

  core::PerformanceArchive archive = ArchiveJob(
      RunGiraphReferenceJob(), core::MakeGiraphModel(), "Giraph");

  std::printf("%s\n", RenderUtilizationChart(archive, 56).c_str());

  std::printf("mean cluster CPU (CPU-s/s over 8 nodes) per phase:\n");
  double load_mean = 0, startup_mean = 0;
  for (const core::OperationResourceUsage& usage :
       core::AttributeCpu(archive, core::AttributionOptions{})) {
    std::printf("  %-28s %8.2f\n", usage.path.c_str(), usage.mean_cpu);
    if (usage.path == "GiraphJob/LoadGraph") load_mean = usage.mean_cpu;
    if (usage.path == "GiraphJob/Startup") startup_mean = usage.mean_cpu;
  }
  std::printf("\npeak cluster CPU: %.2f CPU-s/s (paper's axis: 190.30)\n",
              [&] {
                double peak = 0;
                std::map<double, double> windows;
                for (const core::EnvironmentRecord& r : archive.environment) {
                  windows[r.time_seconds] += r.cpu_seconds_per_second;
                }
                for (const auto& [t, cpu] : windows) {
                  peak = std::max(peak, cpu);
                }
                return peak;
              }());
  std::printf("LoadGraph / Startup mean-CPU ratio: %.1fx %s\n",
              startup_mean > 0 ? load_mean / startup_mean : 0.0,
              "(paper: I/O surprisingly heavy, setup idle)");

  Status s = core::WriteSvgFile("fig6_giraph_cpu.svg",
                                RenderUtilizationSvg(archive));
  if (!s.ok()) std::fprintf(stderr, "%s\n", s.ToString().c_str());
  std::printf("SVG written to fig6_giraph_cpu.svg\n");
}

}  // namespace
}  // namespace granula::bench

int main() {
  granula::bench::Run();
  return 0;
}
