// Reproduces paper Fig. 7: per-node CPU utilization of the PowerGraph job.
// Expected shape: during LoadGraph only ONE node (the sequential loader)
// burns CPU while the other seven idle; the others join only near the end
// of LoadGraph (graph finalization) and for the short ProcessGraph phase.
// Writes fig7_powergraph_cpu.svg.

#include <cstdio>
#include <map>
#include <vector>

#include "bench/workloads.h"
#include "common/strings.h"
#include "granula/visual/svg.h"
#include "granula/visual/text.h"

namespace granula::bench {
namespace {

void Run() {
  std::printf(
      "Fig. 7 reproduction: CPU utilization of PowerGraph operations\n"
      "paper: one node loads sequentially while others idle; all nodes "
      "participate only at the end of LoadGraph\n\n");

  core::PerformanceArchive archive =
      ArchiveJob(RunPowerGraphReferenceJob(), core::MakePowerGraphModel(),
                 "PowerGraph");

  std::printf("%s\n", RenderUtilizationChart(archive, 56).c_str());

  // Quantify the single-loader claim: during the ReadInput operation, how
  // much of the cluster's CPU time is on the coordinator node?
  const core::ArchivedOperation* read =
      archive.FindByPath("PowerGraphJob/LoadGraph/ReadInput");
  if (read != nullptr) {
    double begin = read->StartTime().seconds();
    double end = read->EndTime().seconds();
    std::vector<double> per_node(8, 0.0);
    for (const core::EnvironmentRecord& r : archive.environment) {
      if (r.time_seconds > begin && r.time_seconds <= end + 1e-9 &&
          r.node < per_node.size()) {
        per_node[r.node] += r.cpu_seconds_per_second;
      }
    }
    double total = 0;
    for (double v : per_node) total += v;
    std::printf("during ReadInput (%.1fs .. %.1fs):\n", begin, end);
    for (size_t node = 0; node < per_node.size(); ++node) {
      std::printf("  node%zu: %5.1f%% of cluster CPU time\n", 339 + node,
                  total > 0 ? 100.0 * per_node[node] / total : 0.0);
    }
    std::printf(
        "coordinator share: %.1f%% (paper: 'only one compute node is "
        "utilizing the CPU')\n",
        total > 0 ? 100.0 * per_node[0] / total : 0.0);
  }

  const core::ArchivedOperation* load =
      archive.FindByPath("PowerGraphJob/LoadGraph");
  if (load != nullptr) {
    std::printf("SequentialReadFraction of LoadGraph: %s\n",
                HumanPercent(load->InfoNumber("SequentialReadFraction"))
                    .c_str());
  }

  Status s = core::WriteSvgFile("fig7_powergraph_cpu.svg",
                                RenderUtilizationSvg(archive));
  if (!s.ok()) std::fprintf(stderr, "%s\n", s.ToString().c_str());
  std::printf("SVG written to fig7_powergraph_cpu.svg\n");
}

}  // namespace
}  // namespace granula::bench

int main() {
  granula::bench::Run();
  return 0;
}
