// Microbenchmark for batch archiving: ArchiveRepository::SaveAll across a
// std::thread pool vs. N sequential Save() calls. Serialization dominates
// the cost, so the batch path should scale with cores until the filesystem
// saturates.
//
//   build/bench/micro_archive_batch [--benchmark_filter=...]

#include <filesystem>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "granula/archive/archiver.h"
#include "granula/archive/repository.h"
#include "granula/model/performance_model.h"
#include "granula/monitor/job_logger.h"

namespace granula::core {
namespace {

// One synthetic job archive: a root with `supersteps` phases of `workers`
// worker steps each — big enough that ToJsonString is measurable.
PerformanceArchive MakeArchive(int supersteps, int workers) {
  SimTime now;
  JobLogger logger([&now] { return now; });
  OpId root = logger.StartOperation(kNoOp, "Job", "job-0", "Root");
  for (int s = 0; s < supersteps; ++s) {
    OpId step = logger.StartOperation(root, "Master", "master", "Superstep",
                                      "Superstep-" + std::to_string(s));
    for (int w = 0; w < workers; ++w) {
      OpId work = logger.StartOperation(step, "Worker",
                                        "Worker-" + std::to_string(w),
                                        "Compute");
      logger.AddInfo(work, "MessagesSent", Json(int64_t{1000 + w}));
      now += SimTime::Millis(1);
      logger.EndOperation(work);
    }
    logger.EndOperation(step);
  }
  logger.EndOperation(root);

  PerformanceModel model("bench");
  (void)model.AddRoot("Job", "Root");
  (void)model.AddOperation("Master", "Superstep", "Job", "Root");
  (void)model.AddOperation("Worker", "Compute", "Master", "Superstep");
  auto archive = Archiver().Build(model, logger.records(), {},
                                  {{"platform", "Bench"},
                                   {"algorithm", "BFS"}});
  return std::move(archive).value();
}

std::string BenchDir() {
  return (std::filesystem::temp_directory_path() / "granula_bench_repo")
      .string();
}

void ResetDir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

constexpr int kJobs = 16;

const std::vector<PerformanceArchive>& BenchArchives() {
  static const std::vector<PerformanceArchive>* archives = [] {
    auto* v = new std::vector<PerformanceArchive>();
    for (int i = 0; i < kJobs; ++i) v->push_back(MakeArchive(20, 16));
    return v;
  }();
  return *archives;
}

void BM_SaveSequential(benchmark::State& state) {
  const auto& archives = BenchArchives();
  for (auto _ : state) {
    state.PauseTiming();
    ResetDir(BenchDir());
    ArchiveRepository repo(BenchDir());
    state.ResumeTiming();
    for (const PerformanceArchive& archive : archives) {
      auto name = repo.Save(archive);
      if (!name.ok()) state.SkipWithError(name.status().ToString().c_str());
    }
  }
  state.SetItemsProcessed(state.iterations() * kJobs);
}
BENCHMARK(BM_SaveSequential)->Unit(benchmark::kMillisecond);

void BM_SaveAllThreaded(benchmark::State& state) {
  const auto& archives = BenchArchives();
  std::vector<const PerformanceArchive*> pointers;
  for (const auto& a : archives) pointers.push_back(&a);
  int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    ResetDir(BenchDir());
    ArchiveRepository repo(BenchDir());
    state.ResumeTiming();
    auto names = repo.SaveAll(pointers, threads);
    if (!names.ok()) state.SkipWithError(names.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() * kJobs);
}
BENCHMARK(BM_SaveAllThreaded)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace granula::core

BENCHMARK_MAIN();
