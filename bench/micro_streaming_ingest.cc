// Microbenchmark for the live-monitoring hot paths: StreamingArchiver
// ingest throughput (records/s) vs. the batch Archiver over the same log,
// and the cost of a mid-stream Snapshot() as the open-operation table
// grows. Ingest must keep up with a platform writing records at job
// speed; Snapshot() runs once per watch poll, so it prices the live view.
//
//   build/bench/micro_streaming_ingest [--benchmark_filter=...]

#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "granula/archive/archiver.h"
#include "granula/live/streaming_archiver.h"
#include "granula/model/performance_model.h"
#include "granula/monitor/job_logger.h"

namespace granula::core {
namespace {

PerformanceModel BenchModel() {
  PerformanceModel model("bench");
  (void)model.AddRoot("Job", "Root");
  (void)model.AddOperation("Master", "Superstep", "Job", "Root");
  (void)model.AddOperation("Worker", "Compute", "Master", "Superstep");
  return model;
}

// A synthetic job log shaped like a real superstep trace: `supersteps`
// phases of `workers` worker steps, each with one info record.
std::vector<LogRecord> MakeLog(int supersteps, int workers) {
  SimTime now;
  JobLogger logger([&now] { return now; });
  OpId root = logger.StartOperation(kNoOp, "Job", "job-0", "Root");
  for (int s = 0; s < supersteps; ++s) {
    OpId step = logger.StartOperation(root, "Master", "master", "Superstep",
                                      "Superstep-" + std::to_string(s));
    for (int w = 0; w < workers; ++w) {
      OpId work = logger.StartOperation(step, "Worker",
                                        "Worker-" + std::to_string(w),
                                        "Compute");
      logger.AddInfo(work, "MessagesSent", Json(int64_t{1000 + w}));
      now += SimTime::Millis(1);
      logger.EndOperation(work);
    }
    logger.EndOperation(step);
  }
  logger.EndOperation(root);
  return logger.TakeRecords();
}

void BM_StreamingIngest(benchmark::State& state) {
  PerformanceModel model = BenchModel();
  std::vector<LogRecord> records =
      MakeLog(static_cast<int>(state.range(0)), 16);
  for (auto _ : state) {
    StreamingArchiver archiver(model);
    archiver.AppendAll(records);
    archiver.Finish();
    benchmark::DoNotOptimize(archiver.stats().finalized_operations);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(records.size()));
  state.counters["records"] = static_cast<double>(records.size());
}
BENCHMARK(BM_StreamingIngest)->Arg(8)->Arg(64)->Arg(256);

void BM_BatchArchive(benchmark::State& state) {
  PerformanceModel model = BenchModel();
  std::vector<LogRecord> records =
      MakeLog(static_cast<int>(state.range(0)), 16);
  for (auto _ : state) {
    auto archive = Archiver().Build(model, records, {}, {});
    benchmark::DoNotOptimize(archive.ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(records.size()));
  state.counters["records"] = static_cast<double>(records.size());
}
BENCHMARK(BM_BatchArchive)->Arg(8)->Arg(64)->Arg(256);

// Snapshot cost mid-stream: everything before the last superstep is
// finalized (and evicted), the last superstep's workers are open. This is
// the per-poll price of the live view at a steady state.
void BM_MidStreamSnapshot(benchmark::State& state) {
  PerformanceModel model = BenchModel();
  std::vector<LogRecord> records =
      MakeLog(static_cast<int>(state.range(0)), 16);
  StreamingArchiver archiver(model);
  // Stop short of the final EndOps so the tail of the tree stays open.
  size_t prefix = records.size() - 18;
  for (size_t i = 0; i < prefix; ++i) archiver.Append(records[i]);
  for (auto _ : state) {
    auto snapshot = archiver.Snapshot();
    benchmark::DoNotOptimize(snapshot.ok());
  }
  state.counters["open_ops"] =
      static_cast<double>(archiver.stats().open_operations);
  state.counters["finalized"] =
      static_cast<double>(archiver.stats().finalized_operations);
}
BENCHMARK(BM_MidStreamSnapshot)->Arg(8)->Arg(64)->Arg(256);

}  // namespace
}  // namespace granula::core

BENCHMARK_MAIN();
