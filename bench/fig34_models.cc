// Reproduces paper Figs. 3 and 4 — which are not measurements but model
// artifacts: Fig. 3 is the domain-level breakdown of any graph-processing
// job, Fig. 4 the 4-level Giraph performance model. Both are first-class
// objects in this library, so the "reproduction" is printing them from
// code (the same objects every other bench archives against).

#include <cstdio>

#include "granula/models/models.h"
#include "granula/visual/model_view.h"

int main() {
  using namespace granula;
  std::printf(
      "Fig. 3 reproduction: the domain-level model shared by every "
      "platform\n(Setup -> startup | load | processing | offload | "
      "cleanup)\n\n%s\n",
      core::RenderModelTree(core::MakeGraphProcessingDomainModel())
          .c_str());
  std::printf(
      "Fig. 4 reproduction: the Giraph performance model (domain, system, "
      "implementation levels)\n\n%s",
      core::RenderModelTree(core::MakeGiraphModel()).c_str());
  return 0;
}
