// Reproduces paper Fig. 8: compute-workload distribution among Giraph
// workers across supersteps, at the implementation level of the model
// (PreStep / Compute / Message / PostStep). Expected shape: one mid-run
// superstep dominates (the BFS frontier explosion — "Compute-4" in the
// paper), workers are imbalanced within a superstep, and barrier waits
// (PostStep) are visible. Writes fig8_superstep_timeline.svg.

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "bench/workloads.h"
#include "common/strings.h"
#include "granula/visual/svg.h"
#include "granula/visual/text.h"

namespace granula::bench {
namespace {

void Run() {
  std::printf(
      "Fig. 8 reproduction: per-worker superstep breakdown (Giraph BFS)\n"
      "paper: Compute-4 takes significantly longer; workers imbalanced; "
      "synchronization overhead visible as PreStep/PostStep\n\n");

  core::PerformanceArchive archive = ArchiveJob(
      RunGiraphReferenceJob(), core::MakeGiraphModel(), "Giraph");

  // Per-superstep table: compute time per worker.
  std::map<std::string, std::map<std::string, double>> compute;  // step->worker->s
  std::map<std::string, double> superstep_total;
  for (const core::ArchivedOperation* op :
       archive.FindOperations("Worker", "Compute")) {
    compute[op->mission_id][op->actor_id] = op->Duration().seconds();
  }
  for (const core::ArchivedOperation* op :
       archive.FindOperations("Master", "Superstep")) {
    superstep_total[op->mission_id] = op->Duration().seconds();
  }

  std::printf("compute time per worker per superstep (seconds):\n");
  std::printf("%-12s", "");
  for (int w = 1; w <= 8; ++w) std::printf(" Worker-%d", w);
  std::printf("  imbalance\n");
  std::string dominant;
  double dominant_time = 0;
  for (const auto& [step, workers] : compute) {
    std::printf("%-12s", step.c_str());
    double min = 1e300, max = 0;
    for (int w = 1; w <= 8; ++w) {
      auto it = workers.find(StrFormat("Worker-%d", w));
      double t = it == workers.end() ? 0.0 : it->second;
      std::printf(" %8.3f", t);
      min = std::min(min, t);
      max = std::max(max, t);
    }
    std::printf("  %8.2fx\n", min > 0 ? max / min : 0.0);
    if (max > dominant_time) {
      dominant_time = max;
      dominant = step;
    }
  }
  std::printf("\ndominant superstep: %s (paper: Compute-4)\n",
              dominant.c_str());

  // Overhead share: time inside LocalSuperstep not spent in Compute.
  double compute_total = 0, local_total = 0;
  for (const core::ArchivedOperation* op :
       archive.FindOperations("Worker", "Compute")) {
    compute_total += op->Duration().seconds();
  }
  for (const core::ArchivedOperation* op :
       archive.FindOperations("Worker", "LocalSuperstep")) {
    local_total += op->Duration().seconds();
  }
  std::printf("synchronization/overhead share of worker superstep time: %s\n",
              HumanPercent(local_total > 0
                               ? 1.0 - compute_total / local_total
                               : 0.0)
                  .c_str());

  std::printf("\n%s\n",
              RenderActorTimeline(archive, "Worker", "LocalSuperstep", 76)
                  .c_str());

  Status s = core::WriteSvgFile(
      "fig8_superstep_timeline.svg",
      core::RenderTimelineSvg(archive, "Worker", "LocalSuperstep"));
  if (!s.ok()) std::fprintf(stderr, "%s\n", s.ToString().c_str());
  std::printf("SVG written to fig8_superstep_timeline.svg\n");
}

}  // namespace
}  // namespace granula::bench

int main() {
  granula::bench::Run();
  return 0;
}
