// Ablation A3: greedy vs random vertex-cut in the PowerGraph engine — the
// design choice the PowerGraph paper motivates (DESIGN.md inventory). The
// greedy heuristic lowers the replication factor, which shrinks
// master/mirror sync traffic and gather work, and therefore ProcessGraph
// time. Granula's domain model makes the effect directly measurable.

#include <cstdio>

#include "bench/workloads.h"
#include "common/strings.h"
#include "graph/partition.h"

namespace granula::bench {
namespace {

void Run() {
  std::printf(
      "Ablation A3: vertex-cut strategy (PowerGraph BFS on dg_scale)\n\n");

  graph::Graph g = MakeDgScaleGraph();

  std::printf("replication factor by partitioner and cluster size:\n");
  std::printf("%-10s %10s %10s\n", "ranks", "greedy", "random");
  for (uint32_t ranks : {2u, 4u, 8u}) {
    auto greedy = graph::PartitionVertexCutGreedy(g, ranks);
    auto random = graph::PartitionVertexCutRandom(g, ranks, 1);
    std::printf("%-10u %10.2f %10.2f\n", ranks,
                greedy->ReplicationFactor(g.num_vertices()),
                random->ReplicationFactor(g.num_vertices()));
  }

  std::printf("\nend-to-end effect (8 ranks):\n");
  std::printf("%-24s %14s %14s %16s\n", "cut / interconnect",
              "ProcessGraph", "total", "network bytes");
  for (bool slow_network : {false, true}) {
    for (bool random : {false, true}) {
      platform::PowerGraphPlatform powergraph;
      platform::JobConfig job = MakeJobConfig();
      job.use_random_vertex_cut = random;
      cluster::ClusterConfig cc = MakeDas5LikeCluster();
      if (slow_network) cc.net_bytes_per_sec = 4.0 * 1024 * 1024;  // 4 MiB/s
      auto result = powergraph.Run(g, MakeBfsSpec(), cc, job);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        continue;
      }
      auto archive = ArchiveJob(std::move(result).value(),
                                core::MakePowerGraphModel(), "PowerGraph");
      double tp = archive.root->InfoNumber("ProcessingTime") * 1e-9;
      std::printf("%-24s %13.2fs %13.2fs %16s\n",
                  StrFormat("%s / %s", random ? "random" : "greedy",
                            slow_network ? "4 MiB/s" : "10 Gbit/s")
                      .c_str(),
                  tp, archive.root->Duration().seconds(),
                  HumanBytes(static_cast<double>(archive.root->InfoNumber(
                                 "NetworkBytes", 0)))
                      .c_str());
    }
  }
  std::printf(
      "\nexpected shape: greedy replicates less, so it moves ~1.5x fewer "
      "bytes of master/mirror sync traffic. On a fast interconnect that "
      "barely shows in time (gather work per edge is cut-invariant); on a "
      "slow one the random cut's extra traffic lengthens ProcessGraph — "
      "the regime the PowerGraph paper's claim targets.\n");
}

}  // namespace
}  // namespace granula::bench

int main() {
  granula::bench::Run();
  return 0;
}
