// Micro-benchmarks for the substrates: simulation-kernel event throughput,
// synchronization primitives, partitioners, generators, and small
// end-to-end platform runs. These bound how large a simulated experiment
// can get before host time becomes the constraint.

#include <benchmark/benchmark.h>

#include "cluster/cluster.h"
#include "graph/generators.h"
#include "graph/partition.h"
#include "platforms/giraph.h"
#include "platforms/powergraph.h"
#include "sim/resources.h"
#include "sim/simulator.h"
#include "sim/sync.h"

namespace granula {
namespace {

void BM_SimulatorScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int64_t counter = 0;
    for (int i = 0; i < state.range(0); ++i) {
      sim.ScheduleAt(SimTime::Nanos(i), [&counter] { ++counter; });
    }
    sim.Run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorScheduleRun)->Arg(1000)->Arg(100000);

sim::Task<> PingPong(sim::Simulator& sim, int hops) {
  for (int i = 0; i < hops; ++i) {
    co_await sim.Delay(SimTime::Nanos(1));
  }
}

void BM_CoroutineDelayHops(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    sim.Spawn(PingPong(sim, static_cast<int>(state.range(0))));
    sim.Run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CoroutineDelayHops)->Arg(1000)->Arg(100000);

sim::Task<> BarrierLoop(sim::Simulator& sim, sim::Barrier& barrier,
                        int rounds) {
  for (int i = 0; i < rounds; ++i) {
    co_await sim.Delay(SimTime::Nanos(1));
    co_await barrier.Arrive();
  }
}

void BM_BarrierRounds(benchmark::State& state) {
  const int parties = 8;
  for (auto _ : state) {
    sim::Simulator sim;
    sim::Barrier barrier(&sim, parties);
    for (int p = 0; p < parties; ++p) {
      sim.Spawn(BarrierLoop(sim, barrier, static_cast<int>(state.range(0))));
    }
    sim.Run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * parties);
}
BENCHMARK(BM_BarrierRounds)->Arg(1000);

void BM_GenerateDatagen(benchmark::State& state) {
  graph::DatagenConfig config;
  config.num_vertices = static_cast<uint64_t>(state.range(0));
  config.avg_degree = 10.0;
  for (auto _ : state) {
    auto g = graph::GenerateDatagen(config);
    benchmark::DoNotOptimize(g);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GenerateDatagen)->Arg(10000)->Arg(100000);

void BM_PartitionEdgeCut(benchmark::State& state) {
  auto g = graph::GenerateUniform(static_cast<uint64_t>(state.range(0)),
                                  static_cast<uint64_t>(state.range(0)) * 8,
                                  7);
  for (auto _ : state) {
    auto p = graph::PartitionEdgeCut(*g, 8);
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g->num_edges()));
}
BENCHMARK(BM_PartitionEdgeCut)->Arg(10000)->Arg(100000);

void BM_PartitionVertexCutGreedy(benchmark::State& state) {
  auto g = graph::GenerateUniform(static_cast<uint64_t>(state.range(0)),
                                  static_cast<uint64_t>(state.range(0)) * 8,
                                  7);
  for (auto _ : state) {
    auto p = graph::PartitionVertexCutGreedy(*g, 8);
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g->num_edges()));
}
BENCHMARK(BM_PartitionVertexCutGreedy)->Arg(10000)->Arg(100000);

graph::Graph SmallDatagen() {
  graph::DatagenConfig config;
  config.num_vertices = 5000;
  config.avg_degree = 8.0;
  config.seed = 12;
  return std::move(graph::GenerateDatagen(config)).value();
}

algo::AlgorithmSpec Bfs() {
  algo::AlgorithmSpec spec;
  spec.id = algo::AlgorithmId::kBfs;
  spec.source = 1;
  return spec;
}

void BM_GiraphJobEndToEnd(benchmark::State& state) {
  graph::Graph g = SmallDatagen();
  platform::GiraphPlatform giraph;
  for (auto _ : state) {
    auto result = giraph.Run(g, Bfs(), cluster::ClusterConfig{},
                             platform::JobConfig{});
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.num_edges()));
}
BENCHMARK(BM_GiraphJobEndToEnd);

void BM_PowerGraphJobEndToEnd(benchmark::State& state) {
  graph::Graph g = SmallDatagen();
  platform::PowerGraphPlatform powergraph;
  for (auto _ : state) {
    auto result = powergraph.Run(g, Bfs(), cluster::ClusterConfig{},
                                 platform::JobConfig{});
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.num_edges()));
}
BENCHMARK(BM_PowerGraphJobEndToEnd);

}  // namespace
}  // namespace granula

BENCHMARK_MAIN();
