// Micro-benchmarks for the Granula core: instrumentation overhead (the
// cost a platform pays per logged operation), archiver throughput, archive
// serialization, and query latency. These quantify the "efficiency of
// fine-grained evaluation" concern (paper Issue 4): monitoring must be
// cheap enough to leave on.

#include <benchmark/benchmark.h>

#include "granula/archive/archiver.h"
#include "granula/models/models.h"
#include "granula/monitor/job_logger.h"

namespace granula::core {
namespace {

// A synthetic log shaped like a real Giraph run: one job, 5 phases, and
// `supersteps` supersteps of `workers` workers with 4 stage ops each.
std::vector<LogRecord> SyntheticLog(int supersteps, int workers) {
  SimTime now;
  JobLogger logger([&now] { return now; });
  auto tick = [&now] { now += SimTime::Millis(1); };

  OpId root = logger.StartOperation(kNoOp, ops::kJobActor, "job-0",
                                    ops::kJobMission, "GiraphJob");
  for (const char* phase : {ops::kStartup, ops::kLoadGraph}) {
    OpId op = logger.StartOperation(root, ops::kJobActor, "job-0", phase,
                                    phase);
    tick();
    logger.EndOperation(op);
  }
  OpId process = logger.StartOperation(root, ops::kJobActor, "job-0",
                                       ops::kProcessGraph,
                                       ops::kProcessGraph);
  for (int s = 0; s < supersteps; ++s) {
    OpId step = logger.StartOperation(process, "Master", "Master-0",
                                      "Superstep",
                                      "Superstep-" + std::to_string(s));
    for (int w = 0; w < workers; ++w) {
      OpId local = logger.StartOperation(
          step, "Worker", "Worker-" + std::to_string(w), "LocalSuperstep",
          "LocalSuperstep-" + std::to_string(w));
      for (const char* stage : {"PreStep", "Compute", "Message",
                                "PostStep"}) {
        OpId stage_op = logger.StartOperation(
            local, "Worker", "Worker-" + std::to_string(w), stage, stage);
        logger.AddInfo(stage_op, "VerticesComputed", Json(int64_t{1000}));
        tick();
        logger.EndOperation(stage_op);
      }
      logger.EndOperation(local);
    }
    logger.EndOperation(step);
  }
  logger.EndOperation(process);
  for (const char* phase : {ops::kOffloadGraph, ops::kCleanup}) {
    OpId op = logger.StartOperation(root, ops::kJobActor, "job-0", phase,
                                    phase);
    tick();
    logger.EndOperation(op);
  }
  logger.EndOperation(root);
  return logger.TakeRecords();
}

void BM_LoggerStartEndOperation(benchmark::State& state) {
  SimTime now;
  JobLogger logger([&now] { return now; });
  OpId root = logger.StartOperation(kNoOp, "Job", "j", "Root");
  for (auto _ : state) {
    OpId op = logger.StartOperation(root, "Worker", "Worker-1", "Compute");
    logger.EndOperation(op);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LoggerStartEndOperation);

void BM_LoggerAddInfo(benchmark::State& state) {
  SimTime now;
  JobLogger logger([&now] { return now; });
  OpId op = logger.StartOperation(kNoOp, "Job", "j", "Root");
  for (auto _ : state) {
    logger.AddInfo(op, "VerticesComputed", Json(int64_t{12345}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LoggerAddInfo);

void BM_ArchiverBuild(benchmark::State& state) {
  std::vector<LogRecord> records =
      SyntheticLog(static_cast<int>(state.range(0)), 8);
  PerformanceModel model = MakeGiraphModel();
  for (auto _ : state) {
    auto archive = Archiver().Build(model, records, {}, {});
    benchmark::DoNotOptimize(archive);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(records.size()));
}
BENCHMARK(BM_ArchiverBuild)->Arg(4)->Arg(16)->Arg(64);

void BM_ArchiverBuildDomainOnly(benchmark::State& state) {
  std::vector<LogRecord> records =
      SyntheticLog(static_cast<int>(state.range(0)), 8);
  PerformanceModel model = MakeGiraphModel();
  Archiver::Options options;
  options.max_level = 2;
  for (auto _ : state) {
    auto archive = Archiver(options).Build(model, records, {}, {});
    benchmark::DoNotOptimize(archive);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(records.size()));
}
BENCHMARK(BM_ArchiverBuildDomainOnly)->Arg(16)->Arg(64);

void BM_ArchiveToJson(benchmark::State& state) {
  auto archive = Archiver().Build(MakeGiraphModel(), SyntheticLog(16, 8),
                                  {}, {});
  for (auto _ : state) {
    std::string json = archive->ToJsonString(0);
    benchmark::DoNotOptimize(json);
  }
}
BENCHMARK(BM_ArchiveToJson);

void BM_ArchiveFromJson(benchmark::State& state) {
  auto archive = Archiver().Build(MakeGiraphModel(), SyntheticLog(16, 8),
                                  {}, {});
  std::string json = archive->ToJsonString(0);
  for (auto _ : state) {
    auto restored = PerformanceArchive::FromJsonString(json);
    benchmark::DoNotOptimize(restored);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(json.size()));
}
BENCHMARK(BM_ArchiveFromJson);

void BM_ArchiveFindByPath(benchmark::State& state) {
  auto archive = Archiver().Build(MakeGiraphModel(), SyntheticLog(32, 8),
                                  {}, {});
  for (auto _ : state) {
    const ArchivedOperation* op =
        archive->FindByPath("GiraphJob/ProcessGraph/Superstep-31");
    benchmark::DoNotOptimize(op);
  }
}
BENCHMARK(BM_ArchiveFindByPath);

void BM_ArchiveFindOperations(benchmark::State& state) {
  auto archive = Archiver().Build(MakeGiraphModel(), SyntheticLog(32, 8),
                                  {}, {});
  for (auto _ : state) {
    auto ops = archive->FindOperations("Worker", "Compute");
    benchmark::DoNotOptimize(ops);
  }
}
BENCHMARK(BM_ArchiveFindOperations);

void BM_ModelConstruction(benchmark::State& state) {
  for (auto _ : state) {
    PerformanceModel model = MakeGiraphModel();
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_ModelConstruction);

}  // namespace
}  // namespace granula::core

BENCHMARK_MAIN();
