// Reproduces the paper's introduction claim: "General Big Data platforms,
// such as the MapReduce-based Apache Hadoop, have not been able so far to
// process graphs without severe performance penalties [14, 20, 23]" —
// slowdowns of one to two orders of magnitude in the cited studies.
//
// All three simulated platforms run BFS on dg_scale; the shared domain
// model makes Tp directly comparable, and the Hadoop model explains
// *where* the penalty comes from (per-iteration provisioning + full-state
// rewrites through HDFS).

#include <cstdio>

#include "bench/workloads.h"
#include "common/strings.h"
#include "platforms/hadoop.h"
#include "platforms/pgxd.h"

namespace granula::bench {
namespace {

struct Entry {
  const char* name;
  platform::JobResult result;
};

void Run() {
  std::printf(
      "Intro-claim reproduction: MapReduce vs specialized platforms (BFS "
      "on dg_scale, 8 nodes)\n\n");

  graph::Graph g = MakeDgScaleGraph();
  algo::AlgorithmSpec spec = MakeBfsSpec();

  platform::HadoopPlatform hadoop;
  auto hadoop_run =
      hadoop.Run(g, spec, MakeDas5LikeCluster(), MakeJobConfig());
  if (!hadoop_run.ok()) {
    std::fprintf(stderr, "%s\n", hadoop_run.status().ToString().c_str());
    return;
  }

  std::vector<Entry> entries;
  entries.push_back({"Hadoop", std::move(hadoop_run).value()});
  entries.push_back({"Giraph", RunGiraphReferenceJob()});
  entries.push_back({"PowerGraph", RunPowerGraphReferenceJob()});
  platform::PgxdPlatform pgxd;
  auto pgxd_run = pgxd.Run(g, spec, MakeDas5LikeCluster(), MakeJobConfig());
  if (pgxd_run.ok()) {
    entries.push_back({"PGX.D", std::move(pgxd_run).value()});
  }

  core::PerformanceModel domain = core::MakeGraphProcessingDomainModel();
  std::printf("%-12s %10s %10s %10s %10s %12s\n", "platform", "total",
              "Ts", "Td", "Tp", "supersteps");
  double hadoop_tp = 0, giraph_tp = 0, powergraph_tp = 0, pgxd_tp = 0;
  for (const Entry& entry : entries) {
    auto archive = core::Archiver().Build(domain, entry.result.records, {},
                                          {});
    if (!archive.ok()) continue;
    const core::ArchivedOperation& root = *archive->root;
    double tp = root.InfoNumber("ProcessingTime") * 1e-9;
    std::printf("%-12s %9.2fs %9.2fs %9.2fs %9.2fs %12llu\n", entry.name,
                root.Duration().seconds(),
                root.InfoNumber("SetupTime") * 1e-9,
                root.InfoNumber("IoTime") * 1e-9, tp,
                static_cast<unsigned long long>(entry.result.supersteps));
    if (entry.name == std::string("Hadoop")) hadoop_tp = tp;
    if (entry.name == std::string("Giraph")) giraph_tp = tp;
    if (entry.name == std::string("PowerGraph")) powergraph_tp = tp;
    if (entry.name == std::string("PGX.D")) pgxd_tp = tp;
  }

  std::printf("\nprocessing-time penalty (Tp ratios):\n");
  std::printf("  Hadoop / Giraph:     %6.1fx\n", hadoop_tp / giraph_tp);
  std::printf("  Hadoop / PowerGraph: %6.1fx\n",
              hadoop_tp / powergraph_tp);
  std::printf("  Hadoop / PGX.D:      %6.1fx\n", hadoop_tp / pgxd_tp);
  std::printf(
      "\nwhere the penalty lives (from the Hadoop archive): every BFS "
      "superstep is a full MapReduce job\nthat re-allocates YARN "
      "containers and rewrites the complete graph state through HDFS.\n");
}

}  // namespace
}  // namespace granula::bench

int main() {
  granula::bench::Run();
  return 0;
}
