#ifndef GRANULA_BENCH_WORKLOADS_H_
#define GRANULA_BENCH_WORKLOADS_H_

// The reference workload shared by every figure bench: BFS on a Datagen-
// like social graph ("dg_scale"), 8 compute nodes, 8 workers — a scaled
// version of the paper's experiment (BFS on dg1000, 8 DAS5 nodes). See
// DESIGN.md for the substitution rationale and EXPERIMENTS.md for the
// paper-vs-measured record.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "algorithms/api.h"
#include "cluster/cluster.h"
#include "granula/archive/archiver.h"
#include "granula/models/models.h"
#include "graph/generators.h"
#include "platforms/giraph.h"
#include "platforms/platform.h"
#include "platforms/powergraph.h"

namespace granula::bench {

// dg_scale: ~100k vertices + ~750k edges (~0.85M entities; dg1000 has
// 1.03B, so unit costs in the cost model are scaled up accordingly).
inline graph::Graph MakeDgScaleGraph() {
  graph::DatagenConfig config;
  config.num_vertices = 100000;
  config.avg_degree = 15.0;
  config.degree_exponent = 1.25;
  config.seed = 1000;  // "dg1000", scaled
  auto g = graph::GenerateDatagen(config);
  if (!g.ok()) {
    std::fprintf(stderr, "graph generation failed: %s\n",
                 g.status().ToString().c_str());
    std::abort();
  }
  return std::move(g).value();
}

inline cluster::ClusterConfig MakeDas5LikeCluster() {
  return cluster::ClusterConfig{};  // 8 nodes x 16 cores, see cluster.h
}

inline algo::AlgorithmSpec MakeBfsSpec() {
  algo::AlgorithmSpec spec;
  spec.id = algo::AlgorithmId::kBfs;
  spec.source = 1;  // an ordinary (non-hub) vertex, like Graphalytics BFS
  return spec;
}

inline platform::JobConfig MakeJobConfig() {
  platform::JobConfig config;
  config.num_workers = 8;
  config.compute_threads = 8;
  return config;
}

inline platform::JobResult RunGiraphReferenceJob() {
  platform::GiraphPlatform giraph;
  auto result = giraph.Run(MakeDgScaleGraph(), MakeBfsSpec(),
                           MakeDas5LikeCluster(), MakeJobConfig());
  if (!result.ok()) {
    std::fprintf(stderr, "giraph job failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

inline platform::JobResult RunPowerGraphReferenceJob() {
  platform::PowerGraphPlatform powergraph;
  auto result = powergraph.Run(MakeDgScaleGraph(), MakeBfsSpec(),
                               MakeDas5LikeCluster(), MakeJobConfig());
  if (!result.ok()) {
    std::fprintf(stderr, "powergraph job failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

inline core::PerformanceArchive ArchiveJob(
    platform::JobResult result, const core::PerformanceModel& model,
    const std::string& platform_name) {
  auto archive = core::Archiver().Build(
      model, result.records, std::move(result.environment),
      {{"platform", platform_name},
       {"algorithm", "BFS"},
       {"graph", "dg_scale"},
       {"nodes", "8"}});
  if (!archive.ok()) {
    std::fprintf(stderr, "archiving failed: %s\n",
                 archive.status().ToString().c_str());
    std::abort();
  }
  return std::move(archive).value();
}

}  // namespace granula::bench

#endif  // GRANULA_BENCH_WORKLOADS_H_
