// Reproduces paper Table 1: diversity in (large-scale) graph processing
// platforms — 7 platforms x 8 characteristics, plus which of them this
// library implements as simulated engines.

#include <cstdio>

#include "platforms/registry.h"

int main() {
  std::printf(
      "Table 1 reproduction: diversity in graph processing platforms\n\n");
  std::printf("%s", granula::platform::RenderPlatformTable().c_str());
  std::printf(
      "\nrows with simulated engines in this repository (the paper's "
      "experiments bold Giraph and PowerGraph): ");
  bool first = true;
  for (const auto& p : granula::platform::PlatformRegistry()) {
    if (p.implemented_here) {
      std::printf("%s%s", first ? "" : ", ", p.name.c_str());
      first = false;
    }
  }
  std::printf("\n");
  return 0;
}
