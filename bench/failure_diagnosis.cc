// Failure diagnosis (paper Section 6 future work): inject a degraded node
// into the simulated cluster and show that Granula's choke-point analysis
// localizes it automatically — first as a per-superstep imbalance, then as
// a consistent straggler — and that the regression comparator flags the
// slowdown against a healthy baseline archive.

#include <cstdio>

#include "bench/workloads.h"
#include "common/strings.h"
#include "granula/analysis/chokepoint.h"
#include "granula/analysis/regression.h"

namespace granula::bench {
namespace {

core::PerformanceArchive RunWithCluster(
    const cluster::ClusterConfig& cluster_config) {
  platform::GiraphPlatform giraph;
  auto result = giraph.Run(MakeDgScaleGraph(), MakeBfsSpec(), cluster_config,
                           MakeJobConfig());
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    std::abort();
  }
  return ArchiveJob(std::move(result).value(), core::MakeGiraphModel(),
                    "Giraph");
}

void Run() {
  std::printf(
      "Failure diagnosis: one degraded node (node342 at 45%% CPU speed), "
      "Giraph BFS on dg_scale\n\n");

  cluster::ClusterConfig healthy = MakeDas5LikeCluster();
  cluster::ClusterConfig degraded = MakeDas5LikeCluster();
  degraded.node_speed_factors = {1.0, 1.0, 1.0, 0.45, 1.0, 1.0, 1.0, 1.0};

  core::PerformanceArchive baseline = RunWithCluster(healthy);
  core::PerformanceArchive injected = RunWithCluster(degraded);

  core::ChokepointOptions options;
  options.cluster_cpu_capacity = 8.0 * 16.0;

  std::printf("--- choke-point analysis, healthy cluster ---\n%s\n",
              core::RenderFindings(
                  core::AnalyzeChokepoints(baseline, options))
                  .c_str());
  std::printf("--- choke-point analysis, degraded cluster ---\n%s\n",
              core::RenderFindings(
                  core::AnalyzeChokepoints(injected, options))
                  .c_str());

  core::RegressionOptions reg_options;
  reg_options.max_depth = 2;  // domain-level regression gate
  std::printf("--- regression gate (healthy baseline vs degraded run) ---\n%s",
              core::RenderRegressionReport(core::CompareArchives(
                  baseline, injected, reg_options))
                  .c_str());
  std::printf(
      "\nexpected shape: the degraded run adds straggler_node / "
      "worker_imbalance findings pointing at the worker on node342, and "
      "the regression gate flags ProcessGraph (and LoadGraph, whose "
      "parsing also runs on the slow node).\n");
}

}  // namespace
}  // namespace granula::bench

int main() {
  granula::bench::Run();
  return 0;
}
