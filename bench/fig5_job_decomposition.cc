// Reproduces paper Fig. 5: domain-level job decomposition of BFS on the
// Datagen graph for Giraph and PowerGraph. Prints per-phase durations and
// percentages (the paper's headline numbers: Giraph 30.9% setup / 43.3%
// I/O / 25.8% processing of 81.59s; PowerGraph 94.8% I/O of 400.38s with
// <3.1% processing) and writes fig5_{giraph,powergraph}.svg.

#include <cstdio>

#include "bench/workloads.h"
#include "common/strings.h"
#include "granula/visual/svg.h"
#include "granula/visual/text.h"

namespace granula::bench {
namespace {

void Report(const char* name, const core::PerformanceArchive& archive,
            const char* svg_path) {
  const core::ArchivedOperation& root = *archive.root;
  double total = root.Duration().seconds();
  double setup = root.InfoNumber("SetupTime") * 1e-9;
  double io = root.InfoNumber("IoTime") * 1e-9;
  double processing = root.InfoNumber("ProcessingTime") * 1e-9;

  std::printf("--- %s: BFS on dg_scale, 8 nodes ---\n", name);
  std::printf("%s", RenderBreakdownBar(archive).c_str());
  std::printf("  %-22s %10s  %6s\n", "category", "time", "share");
  std::printf("  %-22s %10s  %6s\n", "Setup (Ts)",
              HumanSeconds(setup).c_str(),
              HumanPercent(setup / total).c_str());
  std::printf("  %-22s %10s  %6s\n", "Input/output (Td)",
              HumanSeconds(io).c_str(), HumanPercent(io / total).c_str());
  std::printf("  %-22s %10s  %6s\n", "Processing (Tp)",
              HumanSeconds(processing).c_str(),
              HumanPercent(processing / total).c_str());
  std::printf("  total %s\n\n", HumanSeconds(total).c_str());

  Status s = core::WriteSvgFile(svg_path, RenderBreakdownSvg(archive));
  if (!s.ok()) std::fprintf(stderr, "%s\n", s.ToString().c_str());
}

void Run() {
  std::printf(
      "Fig. 5 reproduction: domain-level job decomposition\n"
      "paper: Giraph 81.59s (30.9%% setup, 43.3%% I/O, 25.8%% processing); "
      "PowerGraph 400.38s (94.8%% I/O, <3.1%% processing)\n\n");

  core::PerformanceArchive giraph = ArchiveJob(
      RunGiraphReferenceJob(), core::MakeGiraphModel(), "Giraph");
  Report("Giraph", giraph, "fig5_giraph.svg");

  core::PerformanceArchive powergraph =
      ArchiveJob(RunPowerGraphReferenceJob(), core::MakePowerGraphModel(),
                 "PowerGraph");
  Report("PowerGraph", powergraph, "fig5_powergraph.svg");

  std::printf("SVG written to fig5_giraph.svg, fig5_powergraph.svg\n");
}

}  // namespace
}  // namespace granula::bench

int main() {
  granula::bench::Run();
  return 0;
}
