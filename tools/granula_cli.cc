// granula — command-line front end for the whole pipeline.
//
//   granula run      --platform=giraph|powergraph|hadoop|pgxd --algorithm=BFS
//                    [--workers=8] [--nodes=8] [--source=1] [--iterations=10]
//                    [--model-level=0] [--archive-out=run.json]
//                    [--svg-prefix=run] [--html-out=report.html]
//                    [--save-repo=DIR] [--log-out=run.jsonl]
//                    [--slow-node=ID:FACTOR]
//   granula lint     --log=run.jsonl [--model=giraph|...]
//                    [--tolerance=strict|repair] [--archive-out=fixed.json]
//                    (exit 3 when the log has fatal defects)
//   granula analyze  --archive=run.json [--capacity=128]
//   granula compare  --baseline=a.json --candidate=b.json [--tolerance=0.1]
//                    [--depth=0] [--svg-out=cmp.svg]   (exit 2 on regressions)
//   granula list     [--repo=DIR]          (list saved archives)
//   granula model    [--name=giraph|powergraph|hadoop|domain]
//   granula table1
//
// Graph specs: datagen:N[,DEG]   (Datagen-like social graph)
//              rmat:SCALE[,EF]   (R-MAT, 2^SCALE vertices)
//              uniform:N,M       (Erdős–Rényi G(n,m))
//              file:PATH         (edge-list text file)

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/strings.h"
#include "granula/analysis/chokepoint.h"
#include "granula/analysis/regression.h"
#include "granula/archive/archiver.h"
#include "granula/archive/lint.h"
#include "granula/archive/repository.h"
#include "granula/models/models.h"
#include "granula/visual/model_view.h"
#include "granula/visual/report.h"
#include "granula/visual/svg.h"
#include "granula/visual/text.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "platforms/giraph.h"
#include "platforms/graphmat.h"
#include "platforms/hadoop.h"
#include "platforms/pgxd.h"
#include "platforms/powergraph.h"
#include "platforms/registry.h"

namespace granula::cli {
namespace {

// ------------------------------------------------------------- flags ----

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
        std::exit(64);
      }
      size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "true";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    }
  }

  std::string Get(const std::string& name, std::string fallback = "") const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }
  int64_t GetInt(const std::string& name, int64_t fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : std::atoll(it->second.c_str());
  }
  double GetDouble(const std::string& name, double fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }
  bool Has(const std::string& name) const { return values_.count(name) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

[[noreturn]] void Die(const std::string& message) {
  std::fprintf(stderr, "granula: %s\n", message.c_str());
  std::exit(1);
}

// ------------------------------------------------------------ helpers ----

graph::Graph ParseGraphSpec(const std::string& spec) {
  size_t colon = spec.find(':');
  std::string kind = spec.substr(0, colon);
  std::string args = colon == std::string::npos ? "" : spec.substr(colon + 1);
  std::vector<std::string> parts = StrSplit(args, ',');
  auto arg_u64 = [&](size_t i, uint64_t fallback) {
    return i < parts.size() && !parts[i].empty()
               ? std::strtoull(parts[i].c_str(), nullptr, 10)
               : fallback;
  };
  if (kind == "datagen") {
    graph::DatagenConfig config;
    config.num_vertices = arg_u64(0, 100000);
    config.avg_degree = parts.size() > 1 ? std::atof(parts[1].c_str()) : 15.0;
    auto g = graph::GenerateDatagen(config);
    if (!g.ok()) Die(g.status().ToString());
    return std::move(g).value();
  }
  if (kind == "rmat") {
    graph::RmatConfig config;
    config.scale = arg_u64(0, 16);
    config.edge_factor =
        parts.size() > 1 ? std::atof(parts[1].c_str()) : 16.0;
    auto g = graph::GenerateRmat(config);
    if (!g.ok()) Die(g.status().ToString());
    return std::move(g).value();
  }
  if (kind == "uniform") {
    auto g = graph::GenerateUniform(arg_u64(0, 10000), arg_u64(1, 80000),
                                    42);
    if (!g.ok()) Die(g.status().ToString());
    return std::move(g).value();
  }
  if (kind == "file") {
    auto g = graph::ReadEdgeListFile(args, /*directed=*/false);
    if (!g.ok()) Die(g.status().ToString());
    return std::move(g).value();
  }
  Die("unknown graph spec '" + spec + "' (datagen:|rmat:|uniform:|file:)");
}

core::PerformanceModel ModelByName(const std::string& name) {
  if (name == "giraph") return core::MakeGiraphModel();
  if (name == "powergraph") return core::MakePowerGraphModel();
  if (name == "hadoop") return core::MakeHadoopModel();
  if (name == "pgxd") return core::MakePgxdModel();
  if (name == "graphmat") return core::MakeGraphMatModel();
  if (name == "domain") return core::MakeGraphProcessingDomainModel();
  Die("unknown model '" + name +
      "' (giraph|powergraph|hadoop|pgxd|graphmat|domain)");
}

core::PerformanceArchive LoadArchive(const std::string& path) {
  std::ifstream file(path);
  if (!file) Die("cannot open archive " + path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  auto archive = core::PerformanceArchive::FromJsonString(buffer.str());
  if (!archive.ok()) Die(archive.status().ToString());
  return std::move(archive).value();
}

// ----------------------------------------------------------- commands ----

int CmdRun(const Flags& flags) {
  std::string platform_name = flags.Get("platform", "giraph");
  graph::Graph graph = ParseGraphSpec(flags.Get("graph", "datagen:20000"));

  algo::AlgorithmSpec spec;
  auto algorithm = algo::ParseAlgorithm(flags.Get("algorithm", "BFS"));
  if (!algorithm.ok()) Die(algorithm.status().ToString());
  spec.id = *algorithm;
  spec.source =
      static_cast<graph::VertexId>(flags.GetInt("source", 1));
  spec.max_iterations =
      static_cast<uint64_t>(flags.GetInt("iterations", 10));

  cluster::ClusterConfig cluster_config;
  cluster_config.num_nodes =
      static_cast<uint32_t>(flags.GetInt("nodes", 8));
  if (flags.Has("slow-node")) {
    std::vector<std::string> parts = StrSplit(flags.Get("slow-node"), ':');
    if (parts.size() != 2) Die("--slow-node expects ID:FACTOR");
    cluster_config.node_speed_factors.assign(cluster_config.num_nodes, 1.0);
    size_t node = std::strtoull(parts[0].c_str(), nullptr, 10);
    if (node >= cluster_config.num_nodes) Die("slow-node id out of range");
    cluster_config.node_speed_factors[node] = std::atof(parts[1].c_str());
  }

  platform::JobConfig job_config;
  job_config.num_workers = static_cast<uint32_t>(
      flags.GetInt("workers", cluster_config.num_nodes));

  Result<platform::JobResult> result = Status::Internal("unset");
  core::PerformanceModel model = core::MakeGiraphModel();
  if (platform_name == "giraph") {
    result = platform::GiraphPlatform().Run(graph, spec, cluster_config,
                                            job_config);
  } else if (platform_name == "powergraph") {
    model = core::MakePowerGraphModel();
    result = platform::PowerGraphPlatform().Run(graph, spec, cluster_config,
                                                job_config);
  } else if (platform_name == "hadoop") {
    model = core::MakeHadoopModel();
    result = platform::HadoopPlatform().Run(graph, spec, cluster_config,
                                            job_config);
  } else if (platform_name == "pgxd") {
    model = core::MakePgxdModel();
    result = platform::PgxdPlatform().Run(graph, spec, cluster_config,
                                          job_config);
  } else if (platform_name == "graphmat") {
    model = core::MakeGraphMatModel();
    result = platform::GraphMatPlatform().Run(graph, spec, cluster_config,
                                              job_config);
  } else {
    Die("unknown platform '" + platform_name +
        "' (giraph|powergraph|hadoop|pgxd|graphmat)");
  }
  if (!result.ok()) Die(result.status().ToString());

  if (flags.Has("log-out")) {
    Status log_status =
        core::WriteLogRecords(flags.Get("log-out"), result->records);
    if (!log_status.ok()) Die(log_status.ToString());
    std::printf("raw platform log written to %s\n",
                flags.Get("log-out").c_str());
  }

  core::Archiver::Options archiver_options;
  archiver_options.max_level =
      static_cast<int>(flags.GetInt("model-level", 0));
  auto archive = core::Archiver(archiver_options)
                     .Build(model, result->records,
                            std::move(result->environment),
                            {{"platform", platform_name},
                             {"algorithm", flags.Get("algorithm", "BFS")},
                             {"graph", flags.Get("graph", "datagen:20000")}});
  if (!archive.ok()) Die(archive.status().ToString());

  std::printf("%s", core::RenderBreakdownBar(*archive).c_str());
  std::printf("supersteps/iterations: %llu   virtual time: %.2fs   "
              "operations archived: %llu\n",
              static_cast<unsigned long long>(result->supersteps),
              result->total_seconds,
              static_cast<unsigned long long>(archive->OperationCount()));

  if (flags.Has("save-repo")) {
    core::ArchiveRepository repo(flags.Get("save-repo"));
    auto saved = repo.Save(*archive);
    if (!saved.ok()) Die(saved.status().ToString());
    std::printf("archive saved to repository as '%s'\n", saved->c_str());
  }
  if (flags.Has("archive-out")) {
    std::ofstream out(flags.Get("archive-out"));
    if (!out) Die("cannot write " + flags.Get("archive-out"));
    out << archive->ToJsonString();
    std::printf("archive written to %s\n",
                flags.Get("archive-out").c_str());
  }
  if (flags.Has("html-out")) {
    core::ReportOptions report_options;
    report_options.title = platform_name + " " +
                           flags.Get("algorithm", "BFS") + " on " +
                           flags.Get("graph", "datagen:20000");
    report_options.chokepoint_options.cluster_cpu_capacity =
        static_cast<double>(cluster_config.num_nodes) *
        cluster_config.cores_per_node;
    if (platform_name == "powergraph") {
      report_options.timeline_actor_type = "Rank";
      report_options.timeline_mission_type = "Gather";
    }
    Status html_status = core::WriteHtmlReport(*archive, report_options,
                                               flags.Get("html-out"));
    if (!html_status.ok()) Die(html_status.ToString());
    std::printf("HTML report written to %s\n",
                flags.Get("html-out").c_str());
  }
  if (flags.Has("svg-prefix")) {
    std::string prefix = flags.Get("svg-prefix");
    (void)core::WriteSvgFile(prefix + "_breakdown.svg",
                             core::RenderBreakdownSvg(*archive));
    (void)core::WriteSvgFile(prefix + "_utilization.svg",
                             core::RenderUtilizationSvg(*archive));
    std::printf("SVGs written to %s_{breakdown,utilization}.svg\n",
                prefix.c_str());
  }
  return 0;
}

int CmdLint(const Flags& flags) {
  if (!flags.Has("log")) Die("lint requires --log=FILE (JSONL, see run --log-out)");
  auto records = core::ReadLogRecords(flags.Get("log"));
  if (!records.ok()) Die(records.status().ToString());

  core::LintReport report = core::LintLog(*records);
  std::printf("%zu record(s) in %s\n%s\n", records->size(),
              flags.Get("log").c_str(), report.Summary().c_str());

  if (flags.Has("model") || flags.Has("archive-out")) {
    if (!flags.Has("model")) Die("--archive-out requires --model=NAME");
    core::Archiver::Options options;
    std::string tolerance = flags.Get("tolerance", "repair");
    if (tolerance == "strict") {
      options.tolerance = core::Archiver::Tolerance::kStrict;
    } else if (tolerance == "repair") {
      options.tolerance = core::Archiver::Tolerance::kRepair;
    } else {
      Die("unknown --tolerance '" + tolerance + "' (want strict|repair)");
    }
    auto archive = core::Archiver(options).Build(
        ModelByName(flags.Get("model")), *records, {},
        {{"source_log", flags.Get("log")}});
    if (!archive.ok()) Die(archive.status().ToString());
    std::printf("archive built: %llu operation(s), %zu finding(s) "
                "quarantined\n",
                static_cast<unsigned long long>(archive->OperationCount()),
                archive->lint.findings.size());
    if (flags.Has("archive-out")) {
      std::ofstream out(flags.Get("archive-out"));
      if (!out) Die("cannot write " + flags.Get("archive-out"));
      out << archive->ToJsonString();
      std::printf("repaired archive written to %s\n",
                  flags.Get("archive-out").c_str());
    }
  }
  return report.HasFatal() ? 3 : 0;
}

int CmdAnalyze(const Flags& flags) {
  if (!flags.Has("archive")) Die("analyze requires --archive=FILE");
  core::PerformanceArchive archive = LoadArchive(flags.Get("archive"));
  std::printf("%s\n", core::RenderBreakdownBar(archive).c_str());
  core::ChokepointOptions options;
  options.cluster_cpu_capacity = flags.GetDouble("capacity", 128.0);
  std::printf("%s", core::RenderFindings(
                        core::AnalyzeChokepoints(archive, options))
                        .c_str());
  return 0;
}

int CmdCompare(const Flags& flags) {
  if (!flags.Has("baseline") || !flags.Has("candidate")) {
    Die("compare requires --baseline=FILE --candidate=FILE");
  }
  core::PerformanceArchive baseline = LoadArchive(flags.Get("baseline"));
  core::PerformanceArchive candidate = LoadArchive(flags.Get("candidate"));
  core::RegressionOptions options;
  options.tolerance = flags.GetDouble("tolerance", 0.10);
  options.max_depth = static_cast<int>(flags.GetInt("depth", 0));
  core::RegressionReport report =
      core::CompareArchives(baseline, candidate, options);
  std::printf("%s", core::RenderRegressionReport(report).c_str());
  if (flags.Has("svg-out")) {
    Status s = core::WriteSvgFile(
        flags.Get("svg-out"), core::RenderComparisonSvg(baseline, candidate));
    if (!s.ok()) Die(s.ToString());
    std::printf("comparison SVG written to %s\n",
                flags.Get("svg-out").c_str());
  }
  return report.HasRegressions() ? 2 : 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: granula run|lint|analyze|compare|list|model|table1 [--flags]\n"
                 "       (see the header of tools/granula_cli.cc)\n");
    return 64;
  }
  std::string command = argv[1];
  Flags flags(argc, argv);
  if (command == "run") return CmdRun(flags);
  if (command == "lint") return CmdLint(flags);
  if (command == "analyze") return CmdAnalyze(flags);
  if (command == "compare") return CmdCompare(flags);
  if (command == "list") {
    core::ArchiveRepository repo(flags.Get("repo", "."));
    auto entries = repo.List();
    if (!entries.ok()) Die(entries.status().ToString());
    std::printf("%-28s %-12s %-10s %10s %10s\n", "name", "platform",
                "algorithm", "total", "ops");
    for (const auto& entry : *entries) {
      std::printf("%-28s %-12s %-10s %9.2fs %10llu\n", entry.name.c_str(),
                  entry.platform.c_str(), entry.algorithm.c_str(),
                  entry.total_seconds,
                  static_cast<unsigned long long>(entry.operations));
    }
    return 0;
  }
  if (command == "model") {
    std::string name = flags.Get("name", "giraph");
    if (name == "giraph") {
      std::printf("%s", core::RenderModelTree(core::MakeGiraphModel()).c_str());
    } else if (name == "powergraph") {
      std::printf("%s",
                  core::RenderModelTree(core::MakePowerGraphModel()).c_str());
    } else if (name == "hadoop") {
      std::printf("%s", core::RenderModelTree(core::MakeHadoopModel()).c_str());
    } else if (name == "graphmat") {
      std::printf("%s",
                  core::RenderModelTree(core::MakeGraphMatModel()).c_str());
    } else if (name == "pgxd") {
      std::printf("%s", core::RenderModelTree(core::MakePgxdModel()).c_str());
    } else if (name == "domain") {
      std::printf("%s", core::RenderModelTree(
                            core::MakeGraphProcessingDomainModel())
                            .c_str());
    } else {
      Die("unknown model '" + name + "' (giraph|powergraph|hadoop|pgxd|graphmat|domain)");
    }
    return 0;
  }
  if (command == "table1") {
    std::printf("%s", platform::RenderPlatformTable().c_str());
    return 0;
  }
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  return 64;
}

}  // namespace
}  // namespace granula::cli

int main(int argc, char** argv) { return granula::cli::Main(argc, argv); }
