// granula — command-line front end for the whole pipeline.
//
//   granula run      --platform=giraph|powergraph|hadoop|pgxd|graphmat
//                    --algorithm=BFS
//                    [--workers=8] [--nodes=8] [--source=1] [--iterations=10]
//                    [--model-level=0] [--archive-out=run.json]
//                    [--svg-prefix=run] [--html-out=report.html]
//                    [--save-repo=DIR] [--log-out=run.jsonl]
//                    [--live-log=run.live.jsonl] [--live-log-delay-us=0]
//                    [--slow-node=ID:FACTOR]
//                    [--fault=SPEC[,SPEC...]] [--fault-seed=N]
//                    [--fault-count=2] [--max-attempts=4]
//                    [--checkpoint-interval=2]
//                    (fault SPECs: crash:WORKER:STEP[:N] task:WORKER:STEP[:N]
//                     storage:WORKER[:N] logdrop:SEQ logtrunc:SEQ;
//                     exit 1 when the job exhausts its retries)
//   granula bench    [--config=sweep.json]
//                    [--platforms=giraph,pgxd,...] [--algorithms=BFS,WCC,...]
//                    [--graphs=SPEC (repeatable)] [--nodes=4,8]
//                    [--faults=NAME=SPEC (repeatable)]
//                    [--iterations=10] [--source=1] [--max-attempts=4]
//                    [--checkpoint-interval=2] [--model-level=0]
//                    [--repo=sweep-archives] [--sequential]
//                    [--report-out=report.txt]
//                    [--baseline=DIR] [--tolerance=0.1] [--depth=0]
//                    (runs the platforms x algorithms x graphs x nodes
//                     [x faults] sweep into one archive repository, prints
//                     the per-phase comparative report, and — with
//                     --baseline — gates against a committed baseline
//                     sweep: exit 2 on a regression past tolerance or a
//                     baseline job missing from the candidate; exit 64 on
//                     config/axis errors. Flags override config axes; the
//                     config JSON uses the same axis names.)
//   granula lint     --log=run.jsonl [--model=giraph|...]
//                    [--tolerance=strict|repair] [--archive-out=fixed.json]
//                    (exit 3 when the log has fatal defects)
//   granula analyze  --archive=run.json [--capacity=128]
//   granula compare  --baseline=a.json --candidate=b.json [--tolerance=0.1]
//                    [--depth=0] [--svg-out=cmp.svg]   (exit 2 on regressions)
//   granula watch    --log=run.live.jsonl --model=giraph|... [--timeout=30]
//                    [--poll-ms=50] [--depth=3] [--capacity=128] [--ansi]
//                    [--quiet] [--archive-out=final.json]
//                    [--stall-timeout=SECONDS] [--alert-log=alerts.jsonl]
//                    (tails a live log while the job runs; exit 5 on timeout)
//   granula list     [--repo=DIR]          (list saved archives, served
//                    from the repository index without opening bodies)
//   granula query    --repo=DIR [--platform=P] [--algorithm=A]
//                    [--status=complete|incomplete] [--since=UNIXSECS]
//                    [--until=UNIXSECS]
//                    (index-only filter: prints matching entries without
//                     opening a single archive body)
//   granula query    --repo=DIR --name=NAME [--path=ROOT/CHILD/...]
//                    [--findings]
//                    (prints the archive as JSON; --path decodes just that
//                     operation subtree — against a packed repository the
//                     rest of the file is never parsed; --findings prints
//                     the quarantine section)
//   granula pack     --repo=DIR [--to=gba|json]
//                    (converts every archive body in place, atomically per
//                     archive; gba is the compact binary columnar format,
//                     json the interchange form. Round trips are byte-exact
//                     either direction.)
//   granula model    [--name=giraph|powergraph|hadoop|domain]
//   granula table1
//
// Graph specs: datagen:N[,DEG]   (Datagen-like social graph)
//              rmat:SCALE[,EF]   (R-MAT, 2^SCALE vertices)
//              uniform:N,M       (Erdős–Rényi G(n,m))
//              file:PATH         (edge-list text file)
//
// All command logic lives in granula_commands.cc so tests can drive the
// dispatch in-process; this file only adapts argv.

#include <string>
#include <vector>

#include "granula_commands.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return granula::cli::RunGranula(args, stdout, stderr);
}
