#!/usr/bin/env bash
# Runs the engine and live-monitoring benchmarks:
#   BENCH_engine.json     — host-parallel superstep throughput vs threads,
#                           sharded MessageStore, parallel CSR build
#   BENCH_streaming.json  — StreamingArchiver ingest throughput vs the
#                           batch Archiver, and mid-stream Snapshot() cost
#
# Usage: tools/run_bench.sh [build_dir] [engine_out.json] [streaming_out.json]
#   build_dir defaults to ./build; outputs default to ./BENCH_engine.json
#   and ./BENCH_streaming.json.
#
# Notes:
# - The engine bench sweeps the thread axis itself (Resize per benchmark
#   arg), so GRANULA_HOST_THREADS is not needed; the env var only sets the
#   initial pool size.
# - The >=3x-at-8-threads acceptance point assumes >=8 physical cores;
#   on smaller hosts the curve flattens at the core count.
set -euo pipefail

build_dir="${1:-build}"
engine_out="${2:-BENCH_engine.json}"
streaming_out="${3:-BENCH_streaming.json}"
engine_bench="${build_dir}/bench/micro_parallel_engine"
streaming_bench="${build_dir}/bench/micro_streaming_ingest"

for bench in "${engine_bench}" "${streaming_bench}"; do
  if [[ ! -x "${bench}" ]]; then
    echo "error: ${bench} not found — build first:" >&2
    echo "  cmake -B ${build_dir} -S . && cmake --build ${build_dir} -j" >&2
    exit 1
  fi
done

echo "host cores: $(nproc 2>/dev/null || sysctl -n hw.ncpu)"
"${engine_bench}" \
  --benchmark_out="${engine_out}" \
  --benchmark_out_format=json \
  --benchmark_counters_tabular=true

echo
"${streaming_bench}" \
  --benchmark_out="${streaming_out}" \
  --benchmark_out_format=json \
  --benchmark_counters_tabular=true

echo
echo "wrote ${engine_out} and ${streaming_out}"
# Print the superstep-compute scaling summary (speedup vs the 1-thread row
# of each benchmark family) if python3 is around; the JSON has everything.
if command -v python3 >/dev/null; then
  python3 - "${engine_out}" <<'EOF'
import json, sys
data = json.load(open(sys.argv[1]))
base = {}
rows = []
for b in data.get("benchmarks", []):
    name = b["name"].split("/")[0]
    arg = b["name"].split("/")[1].split(":")[0] if "/" in b["name"] else "1"
    t = b["real_time"]
    base.setdefault(name, {})[arg] = t
for name, series in base.items():
    if "1" not in series:
        continue
    speedups = ", ".join(
        f"{arg}t: {series['1'] / t:.2f}x"
        for arg, t in sorted(series.items(), key=lambda kv: int(kv[0])))
    rows.append(f"  {name}: {speedups}")
print("speedup vs 1 host thread:")
print("\n".join(rows))
EOF
  # Streaming vs batch: records/s at the largest log size.
  python3 - "${streaming_out}" <<'EOF'
import json, sys
data = json.load(open(sys.argv[1]))
best = {}
for b in data.get("benchmarks", []):
    name = b["name"].split("/")[0]
    if "items_per_second" in b:
        best[name] = max(best.get(name, 0.0), b["items_per_second"])
if best:
    print("ingest throughput (largest log):")
    for name, rate in sorted(best.items()):
        print(f"  {name}: {rate / 1e6:.2f}M records/s")
EOF
fi
