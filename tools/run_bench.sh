#!/usr/bin/env bash
# Runs the engine, live-monitoring, and serialization benchmarks:
#   BENCH_engine.json     — host-parallel superstep throughput vs threads,
#                           sharded MessageStore, parallel CSR build
#   BENCH_streaming.json  — StreamingArchiver ingest throughput vs the
#                           batch Archiver, and mid-stream Snapshot() cost
#   BENCH_jsonl.json      — JSONL codec vs DOM emit/parse records/s, and
#                           parallel ReadLogRecords vs host threads
#   BENCH_archive.json    — binary archive (GBA) encode/decode vs the JSON
#                           path, offset-table subtree fetch vs full load,
#                           index-served List(), LRU cold vs warm
#   BENCH_serve.json      — `granula serve` HTTP daemon: index-only list,
#                           304 revalidation, hot (shared LRU) vs cold
#                           subtree serving under concurrent readers
#
# Usage: tools/run_bench.sh [build_dir] [engine_out.json] [streaming_out.json]
#                           [jsonl_out.json] [archive_out.json] [serve_out.json]
#   build_dir defaults to ./build; outputs default to ./BENCH_engine.json,
#   ./BENCH_streaming.json, ./BENCH_jsonl.json, ./BENCH_archive.json, and
#   ./BENCH_serve.json.
#
# Notes:
# - The engine bench sweeps the thread axis itself (Resize per benchmark
#   arg), so GRANULA_HOST_THREADS is not needed; the env var only sets the
#   initial pool size.
# - The >=3x-at-8-threads acceptance point assumes >=8 physical cores;
#   on smaller hosts the curve flattens at the core count.
# - The jsonl acceptance point (ParseJsonl >= 3x ParseDom, single thread)
#   is core-count independent.
set -euo pipefail

build_dir="${1:-build}"
engine_out="${2:-BENCH_engine.json}"
streaming_out="${3:-BENCH_streaming.json}"
jsonl_out="${4:-BENCH_jsonl.json}"
archive_out="${5:-BENCH_archive.json}"
serve_out="${6:-BENCH_serve.json}"
engine_bench="${build_dir}/bench/micro_parallel_engine"
streaming_bench="${build_dir}/bench/micro_streaming_ingest"
jsonl_bench="${build_dir}/bench/micro_jsonl"
archive_bench="${build_dir}/bench/micro_archive_query"
serve_bench="${build_dir}/bench/micro_serve"

for bench in "${engine_bench}" "${streaming_bench}" "${jsonl_bench}" \
             "${archive_bench}" "${serve_bench}"; do
  if [[ ! -x "${bench}" ]]; then
    echo "error: ${bench} not found — build first:" >&2
    echo "  cmake -B ${build_dir} -S . && cmake --build ${build_dir} -j" >&2
    exit 1
  fi
done

echo "host cores: $(nproc 2>/dev/null || sysctl -n hw.ncpu)"
"${engine_bench}" \
  --benchmark_out="${engine_out}" \
  --benchmark_out_format=json \
  --benchmark_counters_tabular=true

echo
"${streaming_bench}" \
  --benchmark_out="${streaming_out}" \
  --benchmark_out_format=json \
  --benchmark_counters_tabular=true

echo
"${jsonl_bench}" \
  --benchmark_out="${jsonl_out}" \
  --benchmark_out_format=json \
  --benchmark_counters_tabular=true

echo
"${archive_bench}" \
  --benchmark_out="${archive_out}" \
  --benchmark_out_format=json \
  --benchmark_counters_tabular=true

echo
"${serve_bench}" \
  --benchmark_out="${serve_out}" \
  --benchmark_out_format=json \
  --benchmark_counters_tabular=true

echo
echo "wrote ${engine_out}, ${streaming_out}, ${jsonl_out}, ${archive_out}," \
     "and ${serve_out}"
# Print the superstep-compute scaling summary (speedup vs the 1-thread row
# of each benchmark family) if python3 is around; the JSON has everything.
if command -v python3 >/dev/null; then
  python3 - "${engine_out}" <<'EOF'
import json, sys
data = json.load(open(sys.argv[1]))
base = {}
rows = []
for b in data.get("benchmarks", []):
    name = b["name"].split("/")[0]
    arg = b["name"].split("/")[1].split(":")[0] if "/" in b["name"] else "1"
    t = b["real_time"]
    base.setdefault(name, {})[arg] = t
for name, series in base.items():
    if "1" not in series:
        continue
    speedups = ", ".join(
        f"{arg}t: {series['1'] / t:.2f}x"
        for arg, t in sorted(series.items(), key=lambda kv: int(kv[0])))
    rows.append(f"  {name}: {speedups}")
print("speedup vs 1 host thread:")
print("\n".join(rows))
EOF
  # Streaming vs batch: records/s at the largest log size.
  python3 - "${streaming_out}" <<'EOF'
import json, sys
data = json.load(open(sys.argv[1]))
best = {}
for b in data.get("benchmarks", []):
    name = b["name"].split("/")[0]
    if "items_per_second" in b:
        best[name] = max(best.get(name, 0.0), b["items_per_second"])
if best:
    print("ingest throughput (largest log):")
    for name, rate in sorted(best.items()):
        print(f"  {name}: {rate / 1e6:.2f}M records/s")
EOF
  # JSONL codec vs DOM: records/s plus the fast-path speedup ratios.
  python3 - "${jsonl_out}" <<'EOF'
import json, sys
data = json.load(open(sys.argv[1]))
best = {}
for b in data.get("benchmarks", []):
    name = b["name"].split("/")[0]
    if "items_per_second" in b:
        best[name] = max(best.get(name, 0.0), b["items_per_second"])
if best:
    print("jsonl codec throughput (best size):")
    for name, rate in sorted(best.items()):
        print(f"  {name}: {rate / 1e6:.2f}M records/s")
    for fast, dom, label in [("BM_EmitJsonl", "BM_EmitDom", "emit"),
                             ("BM_ParseJsonl", "BM_ParseDom", "parse")]:
        if fast in best and dom in best and best[dom] > 0:
            print(f"  {label} fast-path speedup vs DOM: "
                  f"{best[fast] / best[dom]:.2f}x")
EOF
  # Binary archive vs JSON: decode/fetch speedups against the acceptance
  # points (full decode >= 5x, subtree fetch >= 20x).
  python3 - "${archive_out}" <<'EOF'
import json, sys
data = json.load(open(sys.argv[1]))
times = {}
for b in data.get("benchmarks", []):
    times[b["name"]] = b["real_time"] * {
        "ns": 1, "us": 1e3, "ms": 1e6, "s": 1e9}[b.get("time_unit", "ns")]
def ratio(slow, fast):
    return times[slow] / times[fast] if slow in times and fast in times else 0
print("binary archive (GBA) vs JSON:")
if ratio("BM_JsonParseFull", "BM_GbaDecodeFull"):
    print(f"  full decode speedup:    "
          f"{ratio('BM_JsonParseFull', 'BM_GbaDecodeFull'):.1f}x (>= 5x wanted)")
if ratio("BM_JsonSubtreeFetch", "BM_GbaSubtreeFetch"):
    print(f"  subtree fetch speedup:  "
          f"{ratio('BM_JsonSubtreeFetch', 'BM_GbaSubtreeFetch'):.1f}x"
          f" (>= 20x wanted)")
for name, label in [("BM_RepoListIndexed", "indexed List()"),
                    ("BM_GbaSubtreeFetch", "subtree fetch (cold)"),
                    ("BM_FetchSubtreeWarm", "subtree fetch (LRU hit)")]:
    if name in times:
        print(f"  {label}: {times[name] / 1e3:.1f}us")
EOF
  # Serve daemon: hot (shared LRU) vs cold subtree throughput per thread
  # count, against the >= 2x acceptance point.
  python3 - "${serve_out}" <<'EOF'
import json, sys
data = json.load(open(sys.argv[1]))
rates = {}
for b in data.get("benchmarks", []):
    if "items_per_second" not in b:
        continue
    name = b["name"].split("/")[0]
    threads = "1"
    for part in b["name"].split("/")[1:]:
        if part.startswith("threads:"):
            threads = part.split(":")[1]
    rates[(name, threads)] = b["items_per_second"]
if rates:
    print("serve daemon throughput:")
    for (name, threads), rate in sorted(rates.items()):
        print(f"  {name} x{threads}: {rate:.0f} req/s")
    for threads in ("1", "4"):
        hot = rates.get(("BM_ServeSubtreeHot", threads))
        cold = rates.get(("BM_ServeSubtreeCold", threads))
        if hot and cold:
            print(f"  hot/cold subtree speedup x{threads}: "
                  f"{hot / cold:.2f}x (>= 2x wanted)")
EOF
fi
