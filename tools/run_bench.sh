#!/usr/bin/env bash
# Runs the host-parallelism engine benchmarks and emits BENCH_engine.json
# (google-benchmark JSON) with the superstep-throughput-vs-host-threads
# curve, the sharded MessageStore deliver/merge microbench, and the parallel
# CSR build bench.
#
# Usage: tools/run_bench.sh [build_dir] [output.json]
#   build_dir defaults to ./build, output defaults to ./BENCH_engine.json.
#
# Notes:
# - The bench sweeps the thread axis itself (Resize per benchmark arg), so
#   GRANULA_HOST_THREADS is not needed; the env var only sets the initial
#   pool size.
# - The >=3x-at-8-threads acceptance point assumes >=8 physical cores;
#   on smaller hosts the curve flattens at the core count.
set -euo pipefail

build_dir="${1:-build}"
out="${2:-BENCH_engine.json}"
bench="${build_dir}/bench/micro_parallel_engine"

if [[ ! -x "${bench}" ]]; then
  echo "error: ${bench} not found — build first:" >&2
  echo "  cmake -B ${build_dir} -S . && cmake --build ${build_dir} -j" >&2
  exit 1
fi

echo "host cores: $(nproc 2>/dev/null || sysctl -n hw.ncpu)"
"${bench}" \
  --benchmark_out="${out}" \
  --benchmark_out_format=json \
  --benchmark_counters_tabular=true

echo
echo "wrote ${out}"
# Print the superstep-compute scaling summary (speedup vs the 1-thread row
# of each benchmark family) if python3 is around; the JSON has everything.
if command -v python3 >/dev/null; then
  python3 - "${out}" <<'EOF'
import json, sys
data = json.load(open(sys.argv[1]))
base = {}
rows = []
for b in data.get("benchmarks", []):
    name = b["name"].split("/")[0]
    arg = b["name"].split("/")[1].split(":")[0] if "/" in b["name"] else "1"
    t = b["real_time"]
    base.setdefault(name, {})[arg] = t
for name, series in base.items():
    if "1" not in series:
        continue
    speedups = ", ".join(
        f"{arg}t: {series['1'] / t:.2f}x"
        for arg, t in sorted(series.items(), key=lambda kv: int(kv[0])))
    rows.append(f"  {name}: {speedups}")
print("speedup vs 1 host thread:")
print("\n".join(rows))
EOF
fi
