#include "granula_commands.h"

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "common/result.h"
#include "common/strings.h"
#include "granula/analysis/chokepoint.h"
#include "granula/analysis/regression.h"
#include "granula/archive/archiver.h"
#include "granula/archive/lint.h"
#include "granula/archive/repository.h"
#include "granula/live/watch.h"
#include "granula/models/models.h"
#include "granula/visual/model_view.h"
#include "granula/visual/report.h"
#include "granula/visual/svg.h"
#include "granula/visual/text.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "platforms/giraph.h"
#include "platforms/graphmat.h"
#include "platforms/hadoop.h"
#include "platforms/pgxd.h"
#include "platforms/powergraph.h"
#include "platforms/registry.h"
#include "sim/faults.h"

namespace granula::cli {
namespace {

// ------------------------------------------------------------- flags ----

class Flags {
 public:
  static Result<Flags> Parse(const std::vector<std::string>& args) {
    Flags flags;
    // args[0] is the command.
    for (size_t i = 1; i < args.size(); ++i) {
      const std::string& arg = args[i];
      if (arg.rfind("--", 0) != 0) {
        return Status::InvalidArgument("unexpected argument: " + arg);
      }
      size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        flags.values_[arg.substr(2)] = "true";
      } else {
        flags.values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    }
    return flags;
  }

  std::string Get(const std::string& name, std::string fallback = "") const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }
  int64_t GetInt(const std::string& name, int64_t fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : std::atoll(it->second.c_str());
  }
  double GetDouble(const std::string& name, double fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }
  bool Has(const std::string& name) const { return values_.count(name) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

// ------------------------------------------------------------ helpers ----

Result<graph::Graph> ParseGraphSpec(const std::string& spec) {
  size_t colon = spec.find(':');
  std::string kind = spec.substr(0, colon);
  std::string args = colon == std::string::npos ? "" : spec.substr(colon + 1);
  std::vector<std::string> parts = StrSplit(args, ',');
  auto arg_u64 = [&](size_t i, uint64_t fallback) {
    return i < parts.size() && !parts[i].empty()
               ? std::strtoull(parts[i].c_str(), nullptr, 10)
               : fallback;
  };
  if (kind == "datagen") {
    graph::DatagenConfig config;
    config.num_vertices = arg_u64(0, 100000);
    config.avg_degree = parts.size() > 1 ? std::atof(parts[1].c_str()) : 15.0;
    return graph::GenerateDatagen(config);
  }
  if (kind == "rmat") {
    graph::RmatConfig config;
    config.scale = arg_u64(0, 16);
    config.edge_factor =
        parts.size() > 1 ? std::atof(parts[1].c_str()) : 16.0;
    return graph::GenerateRmat(config);
  }
  if (kind == "uniform") {
    return graph::GenerateUniform(arg_u64(0, 10000), arg_u64(1, 80000), 42);
  }
  if (kind == "file") {
    return graph::ReadEdgeListFile(args, /*directed=*/false);
  }
  return Status::InvalidArgument("unknown graph spec '" + spec +
                                 "' (datagen:|rmat:|uniform:|file:)");
}

Result<core::PerformanceModel> ModelByName(const std::string& name) {
  if (name == "giraph") return core::MakeGiraphModel();
  if (name == "powergraph") return core::MakePowerGraphModel();
  if (name == "hadoop") return core::MakeHadoopModel();
  if (name == "pgxd") return core::MakePgxdModel();
  if (name == "graphmat") return core::MakeGraphMatModel();
  if (name == "domain") return core::MakeGraphProcessingDomainModel();
  return Status::InvalidArgument(
      "unknown model '" + name +
      "' (giraph|powergraph|hadoop|pgxd|graphmat|domain)");
}

// --fault=SPEC[,SPEC...] plus the retry-policy knobs. SPEC grammar:
//   crash:WORKER:STEP[:N]   worker crash at a superstep/iteration
//   task:WORKER:STEP[:N]    single task-attempt failure
//   storage:WORKER[:N]      transient read error, retried in place
//   logdrop:SEQ             the log record with that seq is never written
//   logtrunc:SEQ            ... is written torn (half the line, no newline)
// N = how many consecutive attempts fail (default 1). --fault-seed adds
// a seeded random plan on top (--fault-count faults).
Result<sim::FaultPlan> ParseFaultFlags(const Flags& flags,
                                       uint32_t num_workers,
                                       uint64_t max_step) {
  sim::FaultPlan plan;
  if (flags.Has("fault-seed")) {
    plan = sim::FaultPlan::Random(
        static_cast<uint64_t>(flags.GetInt("fault-seed", 1)), num_workers,
        max_step, static_cast<uint32_t>(flags.GetInt("fault-count", 2)));
  }
  if (flags.Has("fault")) {
    for (const std::string& text : StrSplit(flags.Get("fault"), ',')) {
      std::vector<std::string> parts = StrSplit(text, ':');
      auto part_u64 = [&](size_t i, uint64_t fallback) {
        return i < parts.size()
                   ? std::strtoull(parts[i].c_str(), nullptr, 10)
                   : fallback;
      };
      if (parts.empty()) {
        return Status::InvalidArgument("empty --fault spec");
      }
      sim::FaultSpec spec;
      const std::string& kind = parts[0];
      if (kind == "crash" || kind == "task") {
        if (parts.size() < 3) {
          return Status::InvalidArgument(
              "--fault " + kind + " expects " + kind + ":WORKER:STEP[:N]");
        }
        spec.kind = kind == "crash" ? sim::FaultKind::kWorkerCrash
                                    : sim::FaultKind::kTaskFailure;
        spec.worker = static_cast<uint32_t>(part_u64(1, 0));
        spec.step = part_u64(2, 0);
        spec.failures = static_cast<uint32_t>(part_u64(3, 1));
      } else if (kind == "storage") {
        if (parts.size() < 2) {
          return Status::InvalidArgument(
              "--fault storage expects storage:WORKER[:N]");
        }
        spec.kind = sim::FaultKind::kStorageError;
        spec.worker = static_cast<uint32_t>(part_u64(1, 0));
        spec.failures = static_cast<uint32_t>(part_u64(2, 1));
      } else if (kind == "logdrop" || kind == "logtrunc") {
        if (parts.size() < 2) {
          return Status::InvalidArgument("--fault " + kind + " expects " +
                                         kind + ":SEQ");
        }
        spec.kind = sim::FaultKind::kLogWrite;
        spec.log_seq = part_u64(1, 0);
        spec.log_effect = kind == "logdrop" ? sim::LogWriteFault::kDrop
                                            : sim::LogWriteFault::kTruncate;
      } else {
        return Status::InvalidArgument(
            "unknown fault kind '" + kind +
            "' (crash|task|storage|logdrop|logtrunc)");
      }
      plan.Add(spec);
    }
  }
  plan.retry.max_attempts =
      static_cast<uint32_t>(flags.GetInt("max-attempts", 4));
  plan.retry.checkpoint_interval =
      static_cast<uint64_t>(flags.GetInt("checkpoint-interval", 2));
  return plan;
}

Result<core::PerformanceArchive> LoadArchive(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::NotFound("cannot open archive " + path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  return core::PerformanceArchive::FromJsonString(buffer.str());
}

// ----------------------------------------------------------- commands ----

Result<int> CmdRun(const Flags& flags, std::FILE* out) {
  std::string platform_name = flags.Get("platform", "giraph");
  GRANULA_ASSIGN_OR_RETURN(
      graph::Graph graph, ParseGraphSpec(flags.Get("graph", "datagen:20000")));

  algo::AlgorithmSpec spec;
  GRANULA_ASSIGN_OR_RETURN(spec.id,
                           algo::ParseAlgorithm(flags.Get("algorithm", "BFS")));
  spec.source = static_cast<graph::VertexId>(flags.GetInt("source", 1));
  spec.max_iterations =
      static_cast<uint64_t>(flags.GetInt("iterations", 10));

  cluster::ClusterConfig cluster_config;
  cluster_config.num_nodes =
      static_cast<uint32_t>(flags.GetInt("nodes", 8));
  if (flags.Has("slow-node")) {
    std::vector<std::string> parts = StrSplit(flags.Get("slow-node"), ':');
    if (parts.size() != 2) {
      return Status::InvalidArgument("--slow-node expects ID:FACTOR");
    }
    cluster_config.node_speed_factors.assign(cluster_config.num_nodes, 1.0);
    size_t node = std::strtoull(parts[0].c_str(), nullptr, 10);
    if (node >= cluster_config.num_nodes) {
      return Status::InvalidArgument("slow-node id out of range");
    }
    cluster_config.node_speed_factors[node] = std::atof(parts[1].c_str());
  }

  platform::JobConfig job_config;
  job_config.num_workers = static_cast<uint32_t>(
      flags.GetInt("workers", cluster_config.num_nodes));
  job_config.live_log_path = flags.Get("live-log");
  job_config.live_log_delay_us =
      static_cast<uint64_t>(flags.GetInt("live-log-delay-us", 0));
  GRANULA_ASSIGN_OR_RETURN(
      job_config.faults,
      ParseFaultFlags(flags, job_config.num_workers, spec.max_iterations));

  Result<platform::JobResult> result = Status::Internal("unset");
  core::PerformanceModel model = core::MakeGiraphModel();
  if (platform_name == "giraph") {
    result = platform::GiraphPlatform().Run(graph, spec, cluster_config,
                                            job_config);
  } else if (platform_name == "powergraph") {
    model = core::MakePowerGraphModel();
    result = platform::PowerGraphPlatform().Run(graph, spec, cluster_config,
                                                job_config);
  } else if (platform_name == "hadoop") {
    model = core::MakeHadoopModel();
    result = platform::HadoopPlatform().Run(graph, spec, cluster_config,
                                            job_config);
  } else if (platform_name == "pgxd") {
    model = core::MakePgxdModel();
    result = platform::PgxdPlatform().Run(graph, spec, cluster_config,
                                          job_config);
  } else if (platform_name == "graphmat") {
    model = core::MakeGraphMatModel();
    result = platform::GraphMatPlatform().Run(graph, spec, cluster_config,
                                              job_config);
  } else {
    return Status::InvalidArgument(
        "unknown platform '" + platform_name +
        "' (giraph|powergraph|hadoop|pgxd|graphmat)");
  }
  GRANULA_RETURN_IF_ERROR(result.status());

  if (flags.Has("log-out")) {
    GRANULA_RETURN_IF_ERROR(
        core::WriteLogRecords(flags.Get("log-out"), result->records));
    std::fprintf(out, "raw platform log written to %s\n",
                 flags.Get("log-out").c_str());
  }

  core::Archiver::Options archiver_options;
  archiver_options.max_level =
      static_cast<int>(flags.GetInt("model-level", 0));
  GRANULA_ASSIGN_OR_RETURN(
      core::PerformanceArchive archive,
      core::Archiver(archiver_options)
          .Build(model, result->records, std::move(result->environment),
                 {{"platform", platform_name},
                  {"algorithm", flags.Get("algorithm", "BFS")},
                  {"graph", flags.Get("graph", "datagen:20000")}}));

  std::fprintf(out, "%s", core::RenderBreakdownBar(archive).c_str());
  std::fprintf(out,
               "supersteps/iterations: %llu   virtual time: %.2fs   "
               "operations archived: %llu\n",
               static_cast<unsigned long long>(result->supersteps),
               result->total_seconds,
               static_cast<unsigned long long>(archive.OperationCount()));
  if (!job_config.faults.empty()) {
    std::fprintf(out,
                 "fault injection: %llu failed attempt(s), %llu restart(s), "
                 "%.2fs lost to recovery%s\n",
                 static_cast<unsigned long long>(result->failed_attempts),
                 static_cast<unsigned long long>(result->restarts),
                 result->lost_seconds,
                 result->completed
                     ? ""
                     : "; job did NOT complete (retries exhausted), archive "
                       "status is incomplete");
  }

  if (flags.Has("save-repo")) {
    core::ArchiveRepository repo(flags.Get("save-repo"));
    GRANULA_ASSIGN_OR_RETURN(std::string saved, repo.Save(archive));
    std::fprintf(out, "archive saved to repository as '%s'\n", saved.c_str());
  }
  if (flags.Has("archive-out")) {
    std::ofstream file(flags.Get("archive-out"));
    if (!file) {
      return Status::IoError("cannot write " + flags.Get("archive-out"));
    }
    file << archive.ToJsonString();
    std::fprintf(out, "archive written to %s\n",
                 flags.Get("archive-out").c_str());
  }
  if (flags.Has("html-out")) {
    core::ReportOptions report_options;
    report_options.title = platform_name + " " +
                           flags.Get("algorithm", "BFS") + " on " +
                           flags.Get("graph", "datagen:20000");
    report_options.chokepoint_options.cluster_cpu_capacity =
        static_cast<double>(cluster_config.num_nodes) *
        cluster_config.cores_per_node;
    if (platform_name == "powergraph") {
      report_options.timeline_actor_type = "Rank";
      report_options.timeline_mission_type = "Gather";
    }
    GRANULA_RETURN_IF_ERROR(core::WriteHtmlReport(archive, report_options,
                                                  flags.Get("html-out")));
    std::fprintf(out, "HTML report written to %s\n",
                 flags.Get("html-out").c_str());
  }
  if (flags.Has("svg-prefix")) {
    std::string prefix = flags.Get("svg-prefix");
    (void)core::WriteSvgFile(prefix + "_breakdown.svg",
                             core::RenderBreakdownSvg(archive));
    (void)core::WriteSvgFile(prefix + "_utilization.svg",
                             core::RenderUtilizationSvg(archive));
    std::fprintf(out, "SVGs written to %s_{breakdown,utilization}.svg\n",
                 prefix.c_str());
  }
  return result->completed ? kExitOk : kExitFatal;
}

Result<int> CmdLint(const Flags& flags, std::FILE* out) {
  if (!flags.Has("log")) {
    return Status::InvalidArgument(
        "lint requires --log=FILE (JSONL, see run --log-out)");
  }
  GRANULA_ASSIGN_OR_RETURN(std::vector<core::LogRecord> records,
                           core::ReadLogRecords(flags.Get("log")));

  core::LintReport report = core::LintLog(records);
  std::fprintf(out, "%zu record(s) in %s\n%s\n", records.size(),
               flags.Get("log").c_str(), report.Summary().c_str());

  if (flags.Has("model") || flags.Has("archive-out")) {
    if (!flags.Has("model")) {
      return Status::InvalidArgument("--archive-out requires --model=NAME");
    }
    core::Archiver::Options options;
    std::string tolerance = flags.Get("tolerance", "repair");
    if (tolerance == "strict") {
      options.tolerance = core::Archiver::Tolerance::kStrict;
    } else if (tolerance == "repair") {
      options.tolerance = core::Archiver::Tolerance::kRepair;
    } else {
      return Status::InvalidArgument("unknown --tolerance '" + tolerance +
                                     "' (want strict|repair)");
    }
    GRANULA_ASSIGN_OR_RETURN(core::PerformanceModel model,
                             ModelByName(flags.Get("model")));
    GRANULA_ASSIGN_OR_RETURN(
        core::PerformanceArchive archive,
        core::Archiver(options).Build(model, records, {},
                                      {{"source_log", flags.Get("log")}}));
    std::fprintf(out,
                 "archive built: %llu operation(s), %zu finding(s) "
                 "quarantined\n",
                 static_cast<unsigned long long>(archive.OperationCount()),
                 archive.lint.findings.size());
    if (flags.Has("archive-out")) {
      std::ofstream file(flags.Get("archive-out"));
      if (!file) {
        return Status::IoError("cannot write " + flags.Get("archive-out"));
      }
      file << archive.ToJsonString();
      std::fprintf(out, "repaired archive written to %s\n",
                   flags.Get("archive-out").c_str());
    }
  }
  return report.HasFatal() ? kExitFatalLint : kExitOk;
}

Result<int> CmdAnalyze(const Flags& flags, std::FILE* out) {
  if (!flags.Has("archive")) {
    return Status::InvalidArgument("analyze requires --archive=FILE");
  }
  GRANULA_ASSIGN_OR_RETURN(core::PerformanceArchive archive,
                           LoadArchive(flags.Get("archive")));
  std::fprintf(out, "%s\n", core::RenderBreakdownBar(archive).c_str());
  core::ChokepointOptions options;
  options.cluster_cpu_capacity = flags.GetDouble("capacity", 128.0);
  std::fprintf(out, "%s",
               core::RenderFindings(core::AnalyzeChokepoints(archive, options))
                   .c_str());
  return kExitOk;
}

Result<int> CmdCompare(const Flags& flags, std::FILE* out) {
  if (!flags.Has("baseline") || !flags.Has("candidate")) {
    return Status::InvalidArgument(
        "compare requires --baseline=FILE --candidate=FILE");
  }
  GRANULA_ASSIGN_OR_RETURN(core::PerformanceArchive baseline,
                           LoadArchive(flags.Get("baseline")));
  GRANULA_ASSIGN_OR_RETURN(core::PerformanceArchive candidate,
                           LoadArchive(flags.Get("candidate")));
  core::RegressionOptions options;
  options.tolerance = flags.GetDouble("tolerance", 0.10);
  options.max_depth = static_cast<int>(flags.GetInt("depth", 0));
  core::RegressionReport report =
      core::CompareArchives(baseline, candidate, options);
  std::fprintf(out, "%s", core::RenderRegressionReport(report).c_str());
  if (flags.Has("svg-out")) {
    GRANULA_RETURN_IF_ERROR(core::WriteSvgFile(
        flags.Get("svg-out"), core::RenderComparisonSvg(baseline, candidate)));
    std::fprintf(out, "comparison SVG written to %s\n",
                 flags.Get("svg-out").c_str());
  }
  return report.HasRegressions() ? kExitRegressions : kExitOk;
}

Result<int> CmdWatch(const Flags& flags, std::FILE* out) {
  if (!flags.Has("log")) {
    return Status::InvalidArgument(
        "watch requires --log=FILE (the JSONL live log of a running job, "
        "see run --live-log)");
  }
  GRANULA_ASSIGN_OR_RETURN(core::PerformanceModel model,
                           ModelByName(flags.Get("model", "giraph")));
  core::WatchOptions options;
  options.log_path = flags.Get("log");
  options.timeout_s = flags.GetDouble("timeout", 30.0);
  options.poll_interval_ms = flags.GetDouble("poll-ms", 50.0);
  options.max_depth = static_cast<int>(flags.GetInt("depth", 3));
  options.ansi = flags.Has("ansi");
  options.quiet = flags.Has("quiet");
  options.stall_timeout_s = flags.GetDouble("stall-timeout", 0.0);
  options.alert_jsonl_path = flags.Get("alert-log");
  options.archiver.max_level =
      static_cast<int>(flags.GetInt("model-level", 0));
  if (flags.Has("capacity")) {
    options.chokepoints.cluster_cpu_capacity =
        flags.GetDouble("capacity", 0.0);
  }
  GRANULA_ASSIGN_OR_RETURN(core::WatchSummary summary,
                           core::WatchLog(model, options, out));
  if (flags.Has("archive-out") && summary.archive.root != nullptr) {
    std::ofstream file(flags.Get("archive-out"));
    if (!file) {
      return Status::IoError("cannot write " + flags.Get("archive-out"));
    }
    file << summary.archive.ToJsonString();
    std::fprintf(out, "archive written to %s\n",
                 flags.Get("archive-out").c_str());
  }
  return summary.completed ? kExitOk : kExitWatchTimeout;
}

Result<int> CmdList(const Flags& flags, std::FILE* out) {
  core::ArchiveRepository repo(flags.Get("repo", "."));
  GRANULA_ASSIGN_OR_RETURN(auto entries, repo.List());
  std::fprintf(out, "%-28s %-12s %-10s %10s %10s\n", "name", "platform",
               "algorithm", "total", "ops");
  for (const auto& entry : entries) {
    std::fprintf(out, "%-28s %-12s %-10s %9.2fs %10llu\n", entry.name.c_str(),
                 entry.platform.c_str(), entry.algorithm.c_str(),
                 entry.total_seconds,
                 static_cast<unsigned long long>(entry.operations));
  }
  return kExitOk;
}

Result<int> CmdModel(const Flags& flags, std::FILE* out) {
  GRANULA_ASSIGN_OR_RETURN(core::PerformanceModel model,
                           ModelByName(flags.Get("name", "giraph")));
  std::fprintf(out, "%s", core::RenderModelTree(model).c_str());
  return kExitOk;
}

}  // namespace

int RunGranula(const std::vector<std::string>& args, std::FILE* out,
               std::FILE* err) {
  if (args.empty()) {
    std::fprintf(err,
                 "usage: granula "
                 "run|lint|analyze|compare|watch|list|model|table1 [--flags]\n"
                 "       (see the header of tools/granula_cli.cc)\n");
    return kExitUsage;
  }
  const std::string& command = args[0];
  Result<Flags> flags = Flags::Parse(args);
  if (!flags.ok()) {
    std::fprintf(err, "%s\n", flags.status().message().c_str());
    return kExitUsage;
  }

  Result<int> code = Status::Internal("unset");
  if (command == "run") {
    code = CmdRun(*flags, out);
  } else if (command == "lint") {
    code = CmdLint(*flags, out);
  } else if (command == "analyze") {
    code = CmdAnalyze(*flags, out);
  } else if (command == "compare") {
    code = CmdCompare(*flags, out);
  } else if (command == "watch") {
    code = CmdWatch(*flags, out);
  } else if (command == "list") {
    code = CmdList(*flags, out);
  } else if (command == "model") {
    code = CmdModel(*flags, out);
  } else if (command == "table1") {
    std::fprintf(out, "%s", platform::RenderPlatformTable().c_str());
    code = kExitOk;
  } else {
    std::fprintf(err, "unknown command '%s'\n", command.c_str());
    return kExitUsage;
  }

  if (!code.ok()) {
    std::fprintf(err, "granula: %s\n", code.status().ToString().c_str());
    return kExitFatal;
  }
  return *code;
}

}  // namespace granula::cli
