#include "granula_commands.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>
#include <utility>

#include "common/result.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "granula/analysis/chokepoint.h"
#include "granula/analysis/comparative.h"
#include "granula/analysis/regression.h"
#include "granula/archive/archiver.h"
#include "granula/archive/lint.h"
#include "granula/archive/gba.h"
#include "granula/archive/repository.h"
#include "granula/bench/sweep.h"
#include "granula/serve/server.h"
#include "granula/live/watch.h"
#include "granula/models/models.h"
#include "granula/visual/comparative_view.h"
#include "granula/visual/model_view.h"
#include "granula/visual/report.h"
#include "granula/visual/svg.h"
#include "granula/visual/text.h"
#include "graph/io.h"
#include "platforms/dispatch.h"
#include "platforms/registry.h"
#include "sim/faults.h"

namespace granula::cli {
namespace {

// ------------------------------------------------------------- flags ----

class Flags {
 public:
  static Result<Flags> Parse(const std::vector<std::string>& args) {
    Flags flags;
    // args[0] is the command.
    for (size_t i = 1; i < args.size(); ++i) {
      const std::string& arg = args[i];
      if (arg.rfind("--", 0) != 0) {
        return Status::InvalidArgument("unexpected argument: " + arg);
      }
      size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        flags.values_[arg.substr(2)].push_back("true");
      } else {
        flags.values_[arg.substr(2, eq - 2)].push_back(arg.substr(eq + 1));
      }
    }
    return flags;
  }

  // Single-valued accessors: the last occurrence wins, like most CLIs.
  std::string Get(const std::string& name, std::string fallback = "") const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second.back();
  }
  int64_t GetInt(const std::string& name, int64_t fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback
                               : std::atoll(it->second.back().c_str());
  }
  double GetDouble(const std::string& name, double fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback
                               : std::atof(it->second.back().c_str());
  }
  // Every occurrence, in order — for sweep axes, where "--graphs=a
  // --graphs=b" accumulates (a graph spec may contain commas, so repeated
  // flags are the only unambiguous list syntax).
  std::vector<std::string> GetAll(const std::string& name) const {
    auto it = values_.find(name);
    return it == values_.end() ? std::vector<std::string>{} : it->second;
  }
  bool Has(const std::string& name) const { return values_.count(name) > 0; }

 private:
  std::map<std::string, std::vector<std::string>> values_;
};

// ------------------------------------------------------------ helpers ----

Result<core::PerformanceModel> ModelByName(const std::string& name) {
  if (name == "domain") return core::MakeGraphProcessingDomainModel();
  Result<core::PerformanceModel> model = platform::ModelForPlatform(name);
  if (model.ok()) return model;
  return Status::InvalidArgument(
      "unknown model '" + name +
      "' (giraph|powergraph|hadoop|pgxd|graphmat|domain)");
}

// --fault=SPEC[,SPEC...] (grammar: sim::FaultPlan::Parse) plus the
// retry-policy knobs. --fault-seed adds a seeded random plan on top
// (--fault-count faults).
Result<sim::FaultPlan> ParseFaultFlags(const Flags& flags,
                                       uint32_t num_workers,
                                       uint64_t max_step) {
  sim::FaultPlan plan;
  if (flags.Has("fault-seed")) {
    plan = sim::FaultPlan::Random(
        static_cast<uint64_t>(flags.GetInt("fault-seed", 1)), num_workers,
        max_step, static_cast<uint32_t>(flags.GetInt("fault-count", 2)));
  }
  if (flags.Has("fault")) {
    GRANULA_ASSIGN_OR_RETURN(sim::FaultPlan parsed,
                             sim::FaultPlan::Parse(flags.Get("fault")));
    for (const sim::FaultSpec& spec : parsed.specs()) plan.Add(spec);
  }
  plan.retry.max_attempts =
      static_cast<uint32_t>(flags.GetInt("max-attempts", 4));
  plan.retry.checkpoint_interval =
      static_cast<uint64_t>(flags.GetInt("checkpoint-interval", 2));
  return plan;
}

Result<core::PerformanceArchive> LoadArchive(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::NotFound("cannot open archive " + path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  return core::PerformanceArchive::FromJsonString(buffer.str());
}

// ----------------------------------------------------------- commands ----

Result<int> CmdRun(const Flags& flags, std::FILE* out, std::FILE* err) {
  std::string platform_name = flags.Get("platform", "giraph");
  GRANULA_ASSIGN_OR_RETURN(
      graph::Graph graph,
      graph::GraphFromSpec(flags.Get("graph", "datagen:20000")));

  algo::AlgorithmSpec spec;
  GRANULA_ASSIGN_OR_RETURN(spec.id,
                           algo::ParseAlgorithm(flags.Get("algorithm", "BFS")));
  spec.source = static_cast<graph::VertexId>(flags.GetInt("source", 1));
  spec.max_iterations =
      static_cast<uint64_t>(flags.GetInt("iterations", 10));

  cluster::ClusterConfig cluster_config;
  cluster_config.num_nodes =
      static_cast<uint32_t>(flags.GetInt("nodes", 8));
  if (flags.Has("slow-node")) {
    // Strictly validated: both fields must parse and the factor must be
    // positive. (strtoull/atof would quietly turn "abc:xyz" into "node 0
    // at factor 0.0" — a config typo silently zeroing a node's speed.)
    std::vector<std::string> parts = StrSplit(flags.Get("slow-node"), ':');
    if (parts.size() != 2) {
      std::fprintf(err, "granula run: --slow-node expects ID:FACTOR, got "
                        "'%s'\n", flags.Get("slow-node").c_str());
      return kExitUsage;
    }
    Result<uint64_t> node = ParseUint64(parts[0]);
    Result<double> factor = ParseFiniteDouble(parts[1]);
    if (!node.ok() || !factor.ok() || *factor <= 0) {
      std::fprintf(err,
                   "granula run: --slow-node expects an integer node id and "
                   "a positive speed factor, got '%s'\n",
                   flags.Get("slow-node").c_str());
      return kExitUsage;
    }
    if (*node >= cluster_config.num_nodes) {
      std::fprintf(err,
                   "granula run: --slow-node id %llu out of range (cluster "
                   "has %u nodes)\n",
                   static_cast<unsigned long long>(*node),
                   cluster_config.num_nodes);
      return kExitUsage;
    }
    cluster_config.node_speed_factors.assign(cluster_config.num_nodes, 1.0);
    cluster_config.node_speed_factors[*node] = *factor;
  }

  platform::JobConfig job_config;
  job_config.num_workers = static_cast<uint32_t>(
      flags.GetInt("workers", cluster_config.num_nodes));
  job_config.live_log_path = flags.Get("live-log");
  job_config.live_log_delay_us =
      static_cast<uint64_t>(flags.GetInt("live-log-delay-us", 0));
  GRANULA_ASSIGN_OR_RETURN(
      job_config.faults,
      ParseFaultFlags(flags, job_config.num_workers, spec.max_iterations));

  GRANULA_ASSIGN_OR_RETURN(core::PerformanceModel model,
                           platform::ModelForPlatform(platform_name));
  GRANULA_ASSIGN_OR_RETURN(
      platform::JobResult result,
      platform::RunForPlatform(platform_name, graph, spec, cluster_config,
                               job_config));

  if (flags.Has("log-out")) {
    GRANULA_RETURN_IF_ERROR(
        core::WriteLogRecords(flags.Get("log-out"), result.records));
    std::fprintf(out, "raw platform log written to %s\n",
                 flags.Get("log-out").c_str());
  }

  core::Archiver::Options archiver_options;
  archiver_options.max_level =
      static_cast<int>(flags.GetInt("model-level", 0));
  GRANULA_ASSIGN_OR_RETURN(
      core::PerformanceArchive archive,
      core::Archiver(archiver_options)
          .Build(model, result.records, std::move(result.environment),
                 {{"platform", platform_name},
                  {"algorithm", flags.Get("algorithm", "BFS")},
                  {"graph", flags.Get("graph", "datagen:20000")}}));

  std::fprintf(out, "%s", core::RenderBreakdownBar(archive).c_str());
  std::fprintf(out,
               "supersteps/iterations: %llu   virtual time: %.2fs   "
               "operations archived: %llu\n",
               static_cast<unsigned long long>(result.supersteps),
               result.total_seconds,
               static_cast<unsigned long long>(archive.OperationCount()));
  if (!job_config.faults.empty()) {
    std::fprintf(out,
                 "fault injection: %llu failed attempt(s), %llu restart(s), "
                 "%.2fs lost to recovery%s\n",
                 static_cast<unsigned long long>(result.failed_attempts),
                 static_cast<unsigned long long>(result.restarts),
                 result.lost_seconds,
                 result.completed
                     ? ""
                     : "; job did NOT complete (retries exhausted), archive "
                       "status is incomplete");
  }

  if (flags.Has("save-repo")) {
    core::ArchiveRepository repo(flags.Get("save-repo"));
    GRANULA_ASSIGN_OR_RETURN(std::string saved, repo.Save(archive));
    std::fprintf(out, "archive saved to repository as '%s'\n", saved.c_str());
  }
  if (flags.Has("archive-out")) {
    std::ofstream file(flags.Get("archive-out"));
    if (!file) {
      return Status::IoError("cannot write " + flags.Get("archive-out"));
    }
    file << archive.ToJsonString();
    std::fprintf(out, "archive written to %s\n",
                 flags.Get("archive-out").c_str());
  }
  if (flags.Has("html-out")) {
    core::ReportOptions report_options;
    report_options.title = platform_name + " " +
                           flags.Get("algorithm", "BFS") + " on " +
                           flags.Get("graph", "datagen:20000");
    report_options.chokepoint_options.cluster_cpu_capacity =
        static_cast<double>(cluster_config.num_nodes) *
        cluster_config.cores_per_node;
    if (platform_name == "powergraph") {
      report_options.timeline_actor_type = "Rank";
      report_options.timeline_mission_type = "Gather";
    }
    GRANULA_RETURN_IF_ERROR(core::WriteHtmlReport(archive, report_options,
                                                  flags.Get("html-out")));
    std::fprintf(out, "HTML report written to %s\n",
                 flags.Get("html-out").c_str());
  }
  if (flags.Has("svg-prefix")) {
    std::string prefix = flags.Get("svg-prefix");
    (void)core::WriteSvgFile(prefix + "_breakdown.svg",
                             core::RenderBreakdownSvg(archive));
    (void)core::WriteSvgFile(prefix + "_utilization.svg",
                             core::RenderUtilizationSvg(archive));
    std::fprintf(out, "SVGs written to %s_{breakdown,utilization}.svg\n",
                 prefix.c_str());
  }
  return result.completed ? kExitOk : kExitFatal;
}

// granula bench — the sweep driver. Axes come from --config=FILE (the
// JSON form documented on SweepSpec::FromJson) and/or axis flags; flags
// override the config axis for axis. All config/axis mistakes are usage
// errors (exit 64); a failing regression gate is exit 2, like compare.
Result<int> CmdBench(const Flags& flags, std::FILE* out, std::FILE* err) {
  bench::SweepSpec spec;
  if (flags.Has("config")) {
    Result<bench::SweepSpec> loaded =
        bench::SweepSpec::FromJsonFile(flags.Get("config"));
    if (!loaded.ok()) {
      std::fprintf(err, "granula bench: %s\n",
                   loaded.status().message().c_str());
      return kExitUsage;
    }
    spec = std::move(*loaded);
  }

  // Comma-splittable axes (their values never contain commas).
  auto csv = [&flags](const std::string& name) {
    std::vector<std::string> values;
    for (const std::string& one : flags.GetAll(name)) {
      for (const std::string& part : StrSplit(one, ',')) {
        if (!part.empty()) values.push_back(part);
      }
    }
    return values;
  };
  if (flags.Has("platforms")) spec.platforms = csv("platforms");
  if (flags.Has("algorithms")) spec.algorithms = csv("algorithms");
  // Graph specs contain commas ("uniform:500,2000"), so each --graphs
  // flag is exactly one spec; same for --faults (NAME=SPEC, SPEC may be a
  // comma-separated plan).
  if (flags.Has("graphs")) spec.graphs = flags.GetAll("graphs");
  if (flags.Has("nodes")) {
    spec.node_counts.clear();
    for (const std::string& part : csv("nodes")) {
      Result<uint64_t> nodes = ParseUint64(part);
      if (!nodes.ok() || *nodes == 0) {
        std::fprintf(err,
                     "granula bench: --nodes expects positive integers, got "
                     "'%s'\n", part.c_str());
        return kExitUsage;
      }
      spec.node_counts.push_back(static_cast<uint32_t>(*nodes));
    }
  }
  if (flags.Has("faults")) {
    spec.faults.clear();
    for (const std::string& one : flags.GetAll("faults")) {
      size_t eq = one.find('=');
      if (eq == 0 || eq == std::string::npos) {
        std::fprintf(err,
                     "granula bench: --faults expects NAME=SPEC (e.g. "
                     "crash2=crash:2:1), got '%s'\n", one.c_str());
        return kExitUsage;
      }
      spec.faults.push_back({one.substr(0, eq), one.substr(eq + 1)});
    }
  }
  if (flags.Has("iterations")) {
    spec.iterations = static_cast<uint64_t>(flags.GetInt("iterations", 10));
  }
  if (flags.Has("source")) spec.source = flags.GetInt("source", 1);
  if (flags.Has("max-attempts")) {
    spec.max_attempts =
        static_cast<uint32_t>(flags.GetInt("max-attempts", 4));
  }
  if (flags.Has("checkpoint-interval")) {
    spec.checkpoint_interval =
        static_cast<uint64_t>(flags.GetInt("checkpoint-interval", 2));
  }
  if (flags.Has("model-level")) {
    spec.model_level = static_cast<int>(flags.GetInt("model-level", 0));
  }

  bench::SweepOptions options;
  options.repo_dir = flags.Get("repo", "sweep-archives");
  options.parallel = !flags.Has("sequential");

  // Expand first: every axis typo surfaces as a usage error before any
  // job has run.
  Result<std::vector<bench::SweepJob>> jobs = bench::ExpandSweep(spec);
  if (!jobs.ok()) {
    std::fprintf(err, "granula bench: %s\n", jobs.status().message().c_str());
    return kExitUsage;
  }

  std::fprintf(out, "sweep: %zu job(s) -> repository %s\n", jobs->size(),
               options.repo_dir.c_str());
  GRANULA_ASSIGN_OR_RETURN(bench::SweepResult sweep,
                           bench::RunSweep(spec, options, out));
  if (!sweep.all_completed) {
    std::fprintf(out, "note: some jobs did not complete (retries "
                      "exhausted); their archives are incomplete\n");
  }

  // --depth cuts both the regression gate and the archive loads: against
  // a packed (GBA) repository the tree levels below the cut are never
  // decoded. The comparative report reads the root's children (level 2),
  // so a cut never goes shallower than that.
  const int depth = static_cast<int>(flags.GetInt("depth", 0));
  const int levels = depth > 0 ? std::max(depth, 2) : 0;

  core::ArchiveRepository repo(options.repo_dir);
  GRANULA_ASSIGN_OR_RETURN(std::vector<core::SweepEntry> entries,
                           core::LoadSweepEntries(repo, levels));
  std::string report =
      core::RenderComparativeReport(core::BuildComparativeReport(entries));
  std::fprintf(out, "\n%s", report.c_str());
  if (flags.Has("report-out")) {
    std::ofstream file(flags.Get("report-out"));
    if (!file) {
      return Status::IoError("cannot write " + flags.Get("report-out"));
    }
    file << report;
    std::fprintf(out, "comparative report written to %s\n",
                 flags.Get("report-out").c_str());
  }

  if (!flags.Has("baseline")) return kExitOk;

  // Regression gate: candidate sweep vs. the committed baseline sweep.
  // Both a measured regression and a job missing from the candidate fail
  // the gate — a sweep that silently stops covering a baseline job must
  // not pass CI.
  core::ArchiveRepository baseline_repo(flags.Get("baseline"));
  GRANULA_ASSIGN_OR_RETURN(std::vector<core::SweepEntry> baseline_entries,
                           core::LoadSweepEntries(baseline_repo, levels));
  core::RegressionOptions regression_options;
  regression_options.tolerance = flags.GetDouble("tolerance", 0.10);
  regression_options.max_depth = depth;
  core::SweepRegressionSummary summary =
      core::CompareSweeps(baseline_entries, entries, regression_options);
  std::fprintf(out, "\n%s",
               core::RenderSweepRegressionSummary(summary).c_str());
  bool gate_failed = summary.HasRegressions() || !summary.missing.empty();
  return gate_failed ? kExitRegressions : kExitOk;
}

Result<int> CmdLint(const Flags& flags, std::FILE* out) {
  if (!flags.Has("log")) {
    return Status::InvalidArgument(
        "lint requires --log=FILE (JSONL, see run --log-out)");
  }
  GRANULA_ASSIGN_OR_RETURN(std::vector<core::LogRecord> records,
                           core::ReadLogRecords(flags.Get("log")));

  core::LintReport report = core::LintLog(records);
  std::fprintf(out, "%zu record(s) in %s\n%s\n", records.size(),
               flags.Get("log").c_str(), report.Summary().c_str());

  if (flags.Has("model") || flags.Has("archive-out")) {
    if (!flags.Has("model")) {
      return Status::InvalidArgument("--archive-out requires --model=NAME");
    }
    core::Archiver::Options options;
    std::string tolerance = flags.Get("tolerance", "repair");
    if (tolerance == "strict") {
      options.tolerance = core::Archiver::Tolerance::kStrict;
    } else if (tolerance == "repair") {
      options.tolerance = core::Archiver::Tolerance::kRepair;
    } else {
      return Status::InvalidArgument("unknown --tolerance '" + tolerance +
                                     "' (want strict|repair)");
    }
    GRANULA_ASSIGN_OR_RETURN(core::PerformanceModel model,
                             ModelByName(flags.Get("model")));
    GRANULA_ASSIGN_OR_RETURN(
        core::PerformanceArchive archive,
        core::Archiver(options).Build(model, records, {},
                                      {{"source_log", flags.Get("log")}}));
    std::fprintf(out,
                 "archive built: %llu operation(s), %zu finding(s) "
                 "quarantined\n",
                 static_cast<unsigned long long>(archive.OperationCount()),
                 archive.lint.findings.size());
    if (flags.Has("archive-out")) {
      std::ofstream file(flags.Get("archive-out"));
      if (!file) {
        return Status::IoError("cannot write " + flags.Get("archive-out"));
      }
      file << archive.ToJsonString();
      std::fprintf(out, "repaired archive written to %s\n",
                   flags.Get("archive-out").c_str());
    }
  }
  return report.HasFatal() ? kExitFatalLint : kExitOk;
}

Result<int> CmdAnalyze(const Flags& flags, std::FILE* out) {
  if (!flags.Has("archive")) {
    return Status::InvalidArgument("analyze requires --archive=FILE");
  }
  GRANULA_ASSIGN_OR_RETURN(core::PerformanceArchive archive,
                           LoadArchive(flags.Get("archive")));
  std::fprintf(out, "%s\n", core::RenderBreakdownBar(archive).c_str());
  core::ChokepointOptions options;
  options.cluster_cpu_capacity = flags.GetDouble("capacity", 128.0);
  std::fprintf(out, "%s",
               core::RenderFindings(core::AnalyzeChokepoints(archive, options))
                   .c_str());
  return kExitOk;
}

Result<int> CmdCompare(const Flags& flags, std::FILE* out) {
  if (!flags.Has("baseline") || !flags.Has("candidate")) {
    return Status::InvalidArgument(
        "compare requires --baseline=FILE --candidate=FILE");
  }
  GRANULA_ASSIGN_OR_RETURN(core::PerformanceArchive baseline,
                           LoadArchive(flags.Get("baseline")));
  GRANULA_ASSIGN_OR_RETURN(core::PerformanceArchive candidate,
                           LoadArchive(flags.Get("candidate")));
  core::RegressionOptions options;
  options.tolerance = flags.GetDouble("tolerance", 0.10);
  options.max_depth = static_cast<int>(flags.GetInt("depth", 0));
  core::RegressionReport report =
      core::CompareArchives(baseline, candidate, options);
  std::fprintf(out, "%s", core::RenderRegressionReport(report).c_str());
  if (flags.Has("svg-out")) {
    GRANULA_RETURN_IF_ERROR(core::WriteSvgFile(
        flags.Get("svg-out"), core::RenderComparisonSvg(baseline, candidate)));
    std::fprintf(out, "comparison SVG written to %s\n",
                 flags.Get("svg-out").c_str());
  }
  return report.HasRegressions() ? kExitRegressions : kExitOk;
}

Result<int> CmdWatch(const Flags& flags, std::FILE* out) {
  if (!flags.Has("log")) {
    return Status::InvalidArgument(
        "watch requires --log=FILE (the JSONL live log of a running job, "
        "see run --live-log)");
  }
  GRANULA_ASSIGN_OR_RETURN(core::PerformanceModel model,
                           ModelByName(flags.Get("model", "giraph")));
  core::WatchOptions options;
  options.log_path = flags.Get("log");
  options.timeout_s = flags.GetDouble("timeout", 30.0);
  options.poll_interval_ms = flags.GetDouble("poll-ms", 50.0);
  options.max_depth = static_cast<int>(flags.GetInt("depth", 3));
  options.ansi = flags.Has("ansi");
  options.quiet = flags.Has("quiet");
  options.stall_timeout_s = flags.GetDouble("stall-timeout", 0.0);
  options.alert_jsonl_path = flags.Get("alert-log");
  options.archiver.max_level =
      static_cast<int>(flags.GetInt("model-level", 0));
  if (flags.Has("capacity")) {
    options.chokepoints.cluster_cpu_capacity =
        flags.GetDouble("capacity", 0.0);
  }
  GRANULA_ASSIGN_OR_RETURN(core::WatchSummary summary,
                           core::WatchLog(model, options, out));
  if (flags.Has("archive-out") && summary.archive.root != nullptr) {
    std::ofstream file(flags.Get("archive-out"));
    if (!file) {
      return Status::IoError("cannot write " + flags.Get("archive-out"));
    }
    file << summary.archive.ToJsonString();
    std::fprintf(out, "archive written to %s\n",
                 flags.Get("archive-out").c_str());
  }
  return summary.completed ? kExitOk : kExitWatchTimeout;
}

std::string FormatSavedTime(int64_t unix_seconds) {
  if (unix_seconds <= 0) return "-";
  std::time_t t = static_cast<std::time_t>(unix_seconds);
  std::tm tm_utc{};
#if defined(_WIN32)
  gmtime_s(&tm_utc, &t);
#else
  gmtime_r(&t, &tm_utc);
#endif
  char buf[24];
  std::strftime(buf, sizeof(buf), "%Y-%m-%d %H:%M", &tm_utc);
  return buf;
}

void PrintEntryTable(const std::vector<core::ArchiveRepository::Entry>& entries,
                     std::FILE* out) {
  std::fprintf(out, "%-28s %-12s %-10s %-10s %10s %10s  %-16s %s\n", "name",
               "platform", "algorithm", "status", "total", "ops",
               "saved (UTC)", "fmt");
  for (const auto& entry : entries) {
    std::fprintf(
        out, "%-28s %-12s %-10s %-10s %9.2fs %10llu  %-16s %s\n",
        entry.name.c_str(), entry.platform.c_str(), entry.algorithm.c_str(),
        entry.status.c_str(), entry.total_seconds,
        static_cast<unsigned long long>(entry.operations),
        FormatSavedTime(entry.saved_unix_seconds).c_str(),
        std::string(core::ArchiveFormatName(entry.format)).c_str());
  }
}

Result<int> CmdList(const Flags& flags, std::FILE* out) {
  core::ArchiveRepository repo(flags.Get("repo", "."));
  GRANULA_ASSIGN_OR_RETURN(auto entries, repo.List());
  PrintEntryTable(entries, out);
  return kExitOk;
}

// granula pack — convert every archive body of a repository to the target
// format (default: the binary GBA format), rewriting the index.
Result<int> CmdPack(const Flags& flags, std::FILE* out, std::FILE* err) {
  if (!flags.Has("repo")) {
    return Status::InvalidArgument("pack requires --repo=DIR");
  }
  Result<core::ArchiveFormat> format =
      core::ParseArchiveFormat(flags.Get("to", "gba"));
  if (!format.ok()) {
    std::fprintf(err, "granula pack: %s\n", format.status().message().c_str());
    return kExitUsage;
  }
  core::ArchiveRepository repo(flags.Get("repo"));
  GRANULA_ASSIGN_OR_RETURN(core::ArchiveRepository::PackStats stats,
                           repo.Pack(*format));
  std::fprintf(out,
               "packed %s: %zu archive(s) converted to %s (%zu already "
               "there), %llu -> %llu bytes\n",
               flags.Get("repo").c_str(), stats.converted,
               std::string(core::ArchiveFormatName(*format)).c_str(),
               stats.skipped,
               static_cast<unsigned long long>(stats.bytes_before),
               static_cast<unsigned long long>(stats.bytes_after));
  return kExitOk;
}

// granula query — the index/partial-load reader. Without --name, filters
// the repository index (no archive body is opened); with --name, prints
// the archive, one subtree (--path, decoded without touching the rest of
// a packed body), or the quarantine findings (--findings).
Result<int> CmdQuery(const Flags& flags, std::FILE* out, std::FILE* err) {
  if (!flags.Has("repo")) {
    return Status::InvalidArgument(
        "query requires --repo=DIR (a repository made by bench/run "
        "--save-repo, optionally packed with 'granula pack')");
  }
  core::ArchiveRepository repo(flags.Get("repo"));
  if (flags.Has("name")) {
    const std::string name = flags.Get("name");
    if (flags.Has("path")) {
      GRANULA_ASSIGN_OR_RETURN(auto subtree,
                               repo.FetchSubtree(name, flags.Get("path")));
      const std::string format = flags.Get("format", "json");
      if (format == "gba") {
        // Raw GBA subtree bytes — the same serialization the serve
        // daemon's content negotiation emits.
        if (!flags.Has("out")) {
          std::fprintf(err,
                       "granula query: --format=gba writes binary bytes and "
                       "requires --out=FILE\n");
          return kExitUsage;
        }
        const std::string bytes = core::EncodeGbaSubtree(*subtree);
        std::ofstream file(flags.Get("out"),
                           std::ios::binary | std::ios::trunc);
        if (!file || !file.write(bytes.data(),
                                 static_cast<std::streamsize>(bytes.size()))) {
          return Status::IoError("cannot write " + flags.Get("out"));
        }
        std::fprintf(out, "wrote %zu GBA byte(s) to %s\n", bytes.size(),
                     flags.Get("out").c_str());
        return kExitOk;
      }
      if (format != "json") {
        std::fprintf(err,
                     "granula query: unknown --format '%s' (json|gba)\n",
                     format.c_str());
        return kExitUsage;
      }
      std::fprintf(out, "%s\n", subtree->ToJson().Dump(2).c_str());
      return kExitOk;
    }
    if (flags.Has("findings")) {
      // Level-1 load: metadata + lint without decoding the tree.
      GRANULA_ASSIGN_OR_RETURN(core::PerformanceArchive archive,
                               repo.LoadShallow(name, 1));
      std::fprintf(out, "%s\n", archive.lint.ToJson().Dump(2).c_str());
      return kExitOk;
    }
    GRANULA_ASSIGN_OR_RETURN(core::PerformanceArchive archive,
                             repo.Load(name));
    std::fprintf(out, "%s\n", archive.ToJsonString().c_str());
    return kExitOk;
  }
  core::ArchiveRepository::Query query;
  query.platform = flags.Get("platform");
  query.algorithm = flags.Get("algorithm");
  query.status = flags.Get("status");
  query.saved_since = flags.GetInt("since", 0);
  query.saved_until = flags.GetInt("until", 0);
  GRANULA_ASSIGN_OR_RETURN(auto entries, repo.Select(query));
  PrintEntryTable(entries, out);
  return kExitOk;
}

// granula serve — the embedded HTTP daemon over an archive repository.
// Runs until SIGINT/SIGTERM, then drains gracefully. Exit 64 on bad
// flags, 1 when the address cannot be bound or the repository is
// unreadable.
std::atomic<bool> g_serve_stop{false};

void ServeSignalHandler(int) {
  g_serve_stop.store(true, std::memory_order_release);
}

Result<int> CmdServe(const Flags& flags, std::FILE* out, std::FILE* err) {
  const std::string root = flags.Get("root", flags.Get("repo"));
  if (root.empty()) {
    std::fprintf(err,
                 "granula serve: --root=DIR (the archive repository to "
                 "serve) is required\n");
    return kExitUsage;
  }

  serve::ServerOptions options;
  options.host = flags.Get("host", "127.0.0.1");
  Result<uint64_t> port = ParseUint64(flags.Get("port", "8080"));
  if (!port.ok() || *port > 65535) {
    std::fprintf(err, "granula serve: bad --port '%s' (expected 0-65535)\n",
                 flags.Get("port", "8080").c_str());
    return kExitUsage;
  }
  options.port = static_cast<int>(*port);
  Result<uint64_t> threads = ParseUint64(flags.Get("threads", "0"));
  if (!threads.ok() || *threads > 1024) {
    std::fprintf(err,
                 "granula serve: bad --threads '%s' (expected 0-1024; 0 = "
                 "every host-pool thread)\n",
                 flags.Get("threads", "0").c_str());
    return kExitUsage;
  }
  Result<uint64_t> timeout = ParseUint64(flags.Get("timeout-ms", "5000"));
  if (!timeout.ok() || *timeout == 0 || *timeout > 3600000) {
    std::fprintf(err,
                 "granula serve: bad --timeout-ms '%s' (expected 1-3600000)\n",
                 flags.Get("timeout-ms", "5000").c_str());
    return kExitUsage;
  }
  options.timeout_ms = static_cast<int>(*timeout);
  options.threads = static_cast<int>(*threads);
  // More workers than the host pool has threads would never run (the
  // pool executes exactly one job); grow the pool to match.
  if (options.threads > ThreadPool::Global().num_threads()) {
    ThreadPool::Global().Resize(options.threads);
  }

  core::ArchiveRepository repo(root);
  Result<std::vector<core::ArchiveRepository::Entry>> entries = repo.List();
  if (!entries.ok()) {
    std::fprintf(err, "granula serve: cannot read repository %s: %s\n",
                 root.c_str(), entries.status().ToString().c_str());
    return kExitFatal;
  }

  serve::ArchiveService service(&repo, serve::ServiceOptions{});
  serve::HttpServer server(&service, options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(err, "granula serve: %s\n", started.ToString().c_str());
    return kExitFatal;
  }

  std::fprintf(out,
               "granula serve: %zu archive(s) from %s on http://%s:%d/ "
               "(Ctrl-C drains)\n",
               entries->size(), root.c_str(), options.host.c_str(),
               server.port());
  std::fflush(out);

  g_serve_stop.store(false, std::memory_order_release);
  std::signal(SIGINT, ServeSignalHandler);
  std::signal(SIGTERM, ServeSignalHandler);
  while (!g_serve_stop.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);

  std::fprintf(out, "granula serve: draining...\n");
  std::fflush(out);
  server.Stop();
  std::fprintf(out, "granula serve: stopped\n");
  return kExitOk;
}

Result<int> CmdModel(const Flags& flags, std::FILE* out) {
  GRANULA_ASSIGN_OR_RETURN(core::PerformanceModel model,
                           ModelByName(flags.Get("name", "giraph")));
  std::fprintf(out, "%s", core::RenderModelTree(model).c_str());
  return kExitOk;
}

}  // namespace

int RunGranula(const std::vector<std::string>& args, std::FILE* out,
               std::FILE* err) {
  if (args.empty()) {
    std::fprintf(err,
                 "usage: granula run|bench|lint|analyze|compare|watch|list|"
                 "query|pack|serve|model|table1 [--flags]\n"
                 "       (see the header of tools/granula_cli.cc)\n");
    return kExitUsage;
  }
  const std::string& command = args[0];
  Result<Flags> flags = Flags::Parse(args);
  if (!flags.ok()) {
    std::fprintf(err, "%s\n", flags.status().message().c_str());
    return kExitUsage;
  }

  Result<int> code = Status::Internal("unset");
  if (command == "run") {
    code = CmdRun(*flags, out, err);
  } else if (command == "bench") {
    code = CmdBench(*flags, out, err);
  } else if (command == "lint") {
    code = CmdLint(*flags, out);
  } else if (command == "analyze") {
    code = CmdAnalyze(*flags, out);
  } else if (command == "compare") {
    code = CmdCompare(*flags, out);
  } else if (command == "watch") {
    code = CmdWatch(*flags, out);
  } else if (command == "list") {
    code = CmdList(*flags, out);
  } else if (command == "query") {
    code = CmdQuery(*flags, out, err);
  } else if (command == "pack") {
    code = CmdPack(*flags, out, err);
  } else if (command == "serve") {
    code = CmdServe(*flags, out, err);
  } else if (command == "model") {
    code = CmdModel(*flags, out);
  } else if (command == "table1") {
    std::fprintf(out, "%s", platform::RenderPlatformTable().c_str());
    code = kExitOk;
  } else {
    std::fprintf(err, "unknown command '%s'\n", command.c_str());
    return kExitUsage;
  }

  if (!code.ok()) {
    std::fprintf(err, "granula: %s\n", code.status().ToString().c_str());
    return kExitFatal;
  }
  return *code;
}

}  // namespace granula::cli
