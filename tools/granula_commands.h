#ifndef GRANULA_TOOLS_GRANULA_COMMANDS_H_
#define GRANULA_TOOLS_GRANULA_COMMANDS_H_

#include <cstdio>
#include <string>
#include <vector>

namespace granula::cli {

// Exit codes of the granula CLI.
//   0   success
//   1   fatal error (bad input, failed run, unwritable output)
//   2   compare: candidate regressed against the baseline
//   3   lint: the log has fatal defects
//   5   watch: the job did not complete before the timeout
//   64  usage error (unknown command or malformed arguments)
inline constexpr int kExitOk = 0;
inline constexpr int kExitFatal = 1;
inline constexpr int kExitRegressions = 2;
inline constexpr int kExitFatalLint = 3;
inline constexpr int kExitWatchTimeout = 5;
inline constexpr int kExitUsage = 64;

// Full CLI dispatch, callable in-process: `args` is argv[1..] (command
// first), output goes to `out`/`err` instead of stdout/stderr. Returns
// the process exit code and never calls exit() — the CLI main() is a thin
// wrapper, and tests drive commands directly.
int RunGranula(const std::vector<std::string>& args, std::FILE* out,
               std::FILE* err);

}  // namespace granula::cli

#endif  // GRANULA_TOOLS_GRANULA_COMMANDS_H_
